package wal

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// TestRatioHelpersZeroGuard pins the division-by-zero guards: before any
// fsync has happened every ratio helper must report 0, not NaN/Inf.
func TestRatioHelpersZeroGuard(t *testing.T) {
	var s Stats
	if got := s.AvgGroup(); got != 0 {
		t.Errorf("AvgGroup() on zero stats = %v, want 0", got)
	}
	if got := s.AvgSyncBytes(); got != 0 {
		t.Errorf("AvgSyncBytes() on zero stats = %v, want 0", got)
	}
	for k, v := range s.Metrics() {
		if v != v || v != 0 { // NaN or nonzero
			t.Errorf("Metrics()[%q] on zero stats = %v, want 0", k, v)
		}
	}

	// A freshly started log has appended nothing and synced nothing.
	l := New(Options{})
	defer l.Close()
	if got := l.Stats().AvgGroup(); got != 0 {
		t.Errorf("fresh log AvgGroup() = %v, want 0", got)
	}

	s = Stats{Syncs: 4, SyncedRecords: 10, SyncedBytes: 400}
	if got := s.AvgGroup(); got != 2.5 {
		t.Errorf("AvgGroup() = %v, want 2.5", got)
	}
	if got := s.AvgSyncBytes(); got != 100 {
		t.Errorf("AvgSyncBytes() = %v, want 100", got)
	}
}

// TestLogMetrics checks that a metrics-enabled log records fsync
// histograms and that Stats flattens into a registry source.
func TestLogMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(Options{Mode: Group})
	l.SetMetrics(reg)
	lsn := l.Append("w", "insert into t values (?)", [][]any{{int64(1)}})
	l.Commit(lsn)
	reg.RegisterSource("wal", func() map[string]float64 { return l.Stats().Metrics() })
	l.Close()

	if s := reg.Histogram("wal.fsync.wall").Snapshot(); s.Count == 0 {
		t.Error("no wal.fsync.wall samples recorded")
	}
	if s := reg.Histogram("wal.fsync.records").Snapshot(); s.Count == 0 || s.Sum != 1 {
		t.Errorf("wal.fsync.records count=%d sum=%d, want 1 record synced", s.Count, s.Sum)
	}
	var b bytes.Buffer
	if err := reg.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte("avg.group")) {
		t.Errorf("dump missing wal source fields:\n%s", b.String())
	}
}

// TestCommitSpan pins that CommitSpan opens and closes a wal.commit child
// and still honors the durability contract.
func TestCommitSpan(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	l := New(Options{Mode: Group})
	defer l.Close()

	sp := tr.Start("request")
	lsn := l.Append("w", "insert into t values (?)", [][]any{{int64(1)}})
	l.CommitSpan(sp, lsn)
	sp.End()

	if got := l.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN = %d, want %d", got, lsn)
	}
	if tr.Open() != 0 {
		t.Fatalf("open spans = %d, want 0", tr.Open())
	}
	if s := reg.Histogram("span.wal.commit.wall").Snapshot(); s.Count != 1 {
		t.Errorf("span.wal.commit.wall count = %d, want 1", s.Count)
	}
	// Nil span: plain commit path.
	lsn = l.Append("w", "insert into t values (?)", [][]any{{int64(2)}})
	l.CommitSpan(nil, lsn)
	if got := l.DurableLSN(); got != lsn {
		t.Fatalf("DurableLSN = %d, want %d", got, lsn)
	}
}
