package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the log's persistence backend. AppendRecords stages encoded
// records; Sync makes everything staged so far durable (the fsync whose cost
// the Syncer charges); WriteSnapshot atomically replaces the checkpoint and
// drops the records it covers. Load returns the durable state — what a
// process restart would find.
type Store interface {
	AppendRecords(recs []Record) (bytes int, err error)
	Sync() error
	WriteSnapshot(snap *Snapshot) error
	Load() (*Snapshot, []Record, error)
	Close() error
}

// wire formats. Values are tagged so int64/string fidelity survives JSON
// ({"i":…} vs {"s":…}): a bare JSON number would come back float64 and break
// the byte-identical differential contract.

type wireVal struct {
	I *int64  `json:"i,omitempty"`
	S *string `json:"s,omitempty"`
}

type wireRecord struct {
	LSN  int64       `json:"lsn"`
	Name string      `json:"name"`
	SQL  string      `json:"sql"`
	Args [][]wireVal `json:"args"`
}

func encodeVals(vals []any) ([]wireVal, error) {
	out := make([]wireVal, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int64:
			out[i].I = &x
		case string:
			out[i].S = &x
		default:
			return nil, fmt.Errorf("wal: cannot encode %T value", v)
		}
	}
	return out, nil
}

func decodeVals(ws []wireVal) []any {
	out := make([]any, len(ws))
	for i, w := range ws {
		if w.I != nil {
			out[i] = *w.I
		} else if w.S != nil {
			out[i] = *w.S
		}
	}
	return out
}

// EncodeRecord renders one record as a JSON line (shared by both stores so
// MemStore's byte accounting matches what FileStore would have written).
func EncodeRecord(r Record) ([]byte, error) {
	w := wireRecord{LSN: r.LSN, Name: r.Name, SQL: r.SQL, Args: make([][]wireVal, len(r.ArgSets))}
	for i, set := range r.ArgSets {
		vs, err := encodeVals(set)
		if err != nil {
			return nil, err
		}
		w.Args[i] = vs
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeRecord parses one EncodeRecord line.
func DecodeRecord(line []byte) (Record, error) {
	var w wireRecord
	if err := json.Unmarshal(line, &w); err != nil {
		return Record{}, err
	}
	r := Record{LSN: w.LSN, Name: w.Name, SQL: w.SQL, ArgSets: make([][]any, len(w.Args))}
	for i, set := range w.Args {
		r.ArgSets[i] = decodeVals(set)
	}
	return r, nil
}

// MemStore keeps the durable state in memory — the default backend for
// simulated durability, where the cost model (Syncer) matters but process
// restarts do not. Crash recovery against a MemStore works because the Log
// itself only exposes the synced prefix.
type MemStore struct {
	snap *Snapshot
	recs []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// AppendRecords stages deep copies and reports their encoded size.
func (m *MemStore) AppendRecords(recs []Record) (int, error) {
	bytes := 0
	for _, r := range recs {
		b, err := EncodeRecord(r)
		if err != nil {
			return bytes, err
		}
		bytes += len(b)
		m.recs = append(m.recs, r)
	}
	return bytes, nil
}

// Sync is a no-op: staged records are already in memory.
func (m *MemStore) Sync() error { return nil }

// WriteSnapshot replaces the checkpoint and truncates covered records.
func (m *MemStore) WriteSnapshot(snap *Snapshot) error {
	m.snap = snap
	kept := m.recs[:0]
	for _, r := range m.recs {
		if r.LSN > snap.LSN {
			kept = append(kept, r)
		}
	}
	m.recs = append([]Record(nil), kept...)
	return nil
}

// Load returns the stored snapshot and record suffix.
func (m *MemStore) Load() (*Snapshot, []Record, error) {
	return m.snap, append([]Record(nil), m.recs...), nil
}

// Close is a no-op.
func (m *MemStore) Close() error { return nil }

// FileStore persists the log under a directory: records as JSON lines in
// wal.log, the checkpoint in snapshot.json (written to a temp file and
// renamed, so a torn snapshot write never corrupts recovery).
type FileStore struct {
	dir string
	f   *os.File
	w   *bufio.Writer
}

// NewFileStore opens (creating if needed) a file-backed store in dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileStore{dir: dir, f: f, w: bufio.NewWriter(f)}, nil
}

// AppendRecords stages encoded records in the write buffer.
func (s *FileStore) AppendRecords(recs []Record) (int, error) {
	bytes := 0
	for _, r := range recs {
		b, err := EncodeRecord(r)
		if err != nil {
			return bytes, err
		}
		n, err := s.w.Write(b)
		bytes += n
		if err != nil {
			return bytes, err
		}
	}
	return bytes, nil
}

// Sync flushes the buffer and fsyncs the log file.
func (s *FileStore) Sync() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// WriteSnapshot writes the checkpoint atomically, then rewrites wal.log with
// only the records past it.
func (s *FileStore) WriteSnapshot(snap *Snapshot) error {
	w, err := snap.wire()
	if err != nil {
		return err
	}
	b, err := json.Marshal(w)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, "snapshot.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, "snapshot.json")); err != nil {
		return err
	}
	// Truncate the log: keep only records past the snapshot.
	if err := s.Sync(); err != nil {
		return err
	}
	_, recs, err := s.Load()
	if err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, "wal.log"), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.f, s.w = f, bufio.NewWriter(f)
	for _, r := range recs {
		if r.LSN <= snap.LSN {
			continue
		}
		b, err := EncodeRecord(r)
		if err != nil {
			return err
		}
		if _, err := s.w.Write(b); err != nil {
			return err
		}
	}
	return s.Sync()
}

// Load reads the durable snapshot and records from disk. Only fully synced
// state is visible because AppendRecords buffers until Sync.
func (s *FileStore) Load() (*Snapshot, []Record, error) {
	var snap *Snapshot
	if b, err := os.ReadFile(filepath.Join(s.dir, "snapshot.json")); err == nil {
		var w wireSnapshot
		if err := json.Unmarshal(b, &w); err != nil {
			return nil, nil, err
		}
		sn, err := w.snapshot()
		if err != nil {
			return nil, nil, err
		}
		snap = sn
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, "wal.log"))
	if err != nil {
		if os.IsNotExist(err) {
			return snap, nil, nil
		}
		return nil, nil, err
	}
	var recs []Record
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := DecodeRecord([]byte(line))
		if err != nil {
			return nil, nil, err
		}
		if snap != nil && r.LSN <= snap.LSN {
			continue
		}
		recs = append(recs, r)
	}
	return snap, recs, nil
}

// Close flushes and closes the log file.
func (s *FileStore) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
