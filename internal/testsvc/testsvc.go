// Package testsvc provides a deterministic in-memory query service used by
// the transformation tests and property tests: results are a pure function
// of the query name and arguments, so an original program and its
// transformed version must produce identical outputs regardless of
// submission interleaving.
package testsvc

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/query"
)

// Runner returns a thread-safe exec.Runner whose result for (name, args) is
// a small deterministic integer.
func Runner() exec.Runner {
	return func(req query.Request) query.Result {
		return query.Ok(Hash(req.Name, req.Args))
	}
}

// Hash computes the deterministic result value. It folds the bytes of
// name|arg1|arg2|... into an FNV accumulator without materialising the
// string (integer arguments format into a stack buffer), so the hot
// submit/fetch path of the executor benchmarks does not allocate here. The
// values are identical to the original string-building implementation.
func Hash(name string, args []any) int64 {
	h := fnvString(fnvOffset, name)
	for _, a := range args {
		h = fnvByte(h, '|')
		if i, ok := a.(int64); ok {
			var buf [20]byte
			h = fnvBytes(h, strconv.AppendInt(buf[:0], i, 10))
		} else {
			h = fnvString(h, interp.Format(a))
		}
	}
	if h < 0 {
		h = -h
	}
	return h % 97
}

const (
	fnvOffset int64 = 1469598103934665603
	fnvPrime  int64 = 1099511628211
)

func fnvByte(h int64, b byte) int64 { return (h ^ int64(b)) * fnvPrime }

func fnvString(h int64, s string) int64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvBytes(h int64, s []byte) int64 {
	for _, b := range s {
		h = fnvByte(h, b)
	}
	return h
}

// LoggingRunner wraps Runner, recording every execution (name plus formatted
// args) in submission order. Safe for concurrent use.
type LoggingRunner struct {
	mu  sync.Mutex
	log []string
}

// Run is the exec.Runner method value to pass to services.
func (l *LoggingRunner) Run(req query.Request) query.Result {
	l.mu.Lock()
	entry := req.Name
	for _, a := range req.Args {
		entry += "|" + interp.Format(a)
	}
	l.log = append(l.log, entry)
	l.mu.Unlock()
	return query.Ok(Hash(req.Name, req.Args))
}

// Log returns a copy of the executions so far.
func (l *LoggingRunner) Log() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.log...)
}

// BatchRunner returns the set-oriented sibling of Runner: every binding
// yields the same deterministic Hash value a per-query execution would.
func BatchRunner() exec.BatchRunner {
	return func(req query.BatchRequest) query.BatchResult {
		vals := make([]any, len(req.ArgSets))
		for i, args := range req.ArgSets {
			vals[i] = Hash(req.Name, args)
		}
		return query.BatchResult{Values: vals, Errs: make([]error, len(req.ArgSets))}
	}
}

// NewSync returns a blocking-only service (original programs).
func NewSync() *exec.Service { return exec.NewService(0, Runner()) }

// NewAsync returns a service with a worker pool (transformed programs).
func NewAsync(workers int) *exec.Service { return exec.NewService(workers, Runner()) }

// FailingRunner returns a runner that fails every query whose name is in
// bad, for failure-injection tests.
func FailingRunner(bad ...string) exec.Runner {
	set := map[string]bool{}
	for _, b := range bad {
		set[b] = true
	}
	return func(req query.Request) query.Result {
		if set[req.Name] {
			return query.Fail(fmt.Errorf("injected failure for %s", req.Name))
		}
		return query.Ok(Hash(req.Name, req.Args))
	}
}
