package query

import (
	"sync"
	"sync/atomic"
)

// Session is a client session token: the monotonic bookkeeping that makes
// read-your-writes and bounded-staleness reads work. A session remembers
// the LSN of its last acknowledged write (reads at ReadYourWrites must
// observe it) and the LSN its last read was served at (so staleness can
// also be monotonic per session).
//
// Sessions are hierarchical: a client holds one root session, and a shard
// router derives one child per shard with Sub(i), since each shard's
// replica group has its own LSN space. Children are created lazily and
// cached, so a session is cheap until a shard actually serves it.
//
// A nil *Session is valid everywhere and means "sessionless".
type Session struct {
	write  atomic.Int64
	served atomic.Int64

	mu   sync.Mutex
	subs map[int]*Session
}

// NewSession returns a fresh root session.
func NewSession() *Session { return &Session{} }

// Sub returns the child session for shard i, creating it on first use.
// Safe on nil (returns nil).
func (s *Session) Sub(i int) *Session {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs == nil {
		s.subs = make(map[int]*Session)
	}
	c, ok := s.subs[i]
	if !ok {
		c = &Session{}
		s.subs[i] = c
	}
	return c
}

// NoteWrite records the LSN of an acknowledged write.
func (s *Session) NoteWrite(lsn int64) {
	if s != nil {
		s.write.Store(lsn)
	}
}

// NoteServed records the LSN a read was served at — the state the
// session's most recent read actually observed (not a high-water mark;
// the serving layer keeps its own monotonic floor).
func (s *Session) NoteServed(lsn int64) {
	if s != nil {
		s.served.Store(lsn)
	}
}

// LastWriteLSN returns the LSN of the session's last acknowledged write.
func (s *Session) LastWriteLSN() int64 {
	if s == nil {
		return 0
	}
	return s.write.Load()
}

// LastServedLSN returns the highest LSN any read in this session was
// served at.
func (s *Session) LastServedLSN() int64 {
	if s == nil {
		return 0
	}
	return s.served.Load()
}
