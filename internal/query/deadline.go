package query

import "time"

// Deadline is an absolute give-up time for a request. The zero Deadline
// means "no deadline" and never expires — requests without one behave
// exactly as before deadlines existed. Deadlines are wall-clock absolute
// (not durations) so they survive hops across the wire, the coalescer's
// linger wait and the executor queue without re-arming.
type Deadline struct {
	t time.Time
}

// After returns a deadline d from now. Non-positive d yields an
// already-expired deadline, not a zero one.
func After(d time.Duration) Deadline { return Deadline{t: time.Now().Add(d)} }

// At returns a deadline at the absolute time t (zero t = no deadline).
func At(t time.Time) Deadline { return Deadline{t: t} }

// IsZero reports whether no deadline is set.
func (d Deadline) IsZero() bool { return d.t.IsZero() }

// Expired reports whether the deadline is set and has passed.
func (d Deadline) Expired() bool {
	return !d.t.IsZero() && !time.Now().Before(d.t)
}

// Remaining returns the time left until the deadline: negative once
// expired, and an effectively infinite duration when no deadline is set
// (so min-style comparisons treat "none" as latest).
func (d Deadline) Remaining() time.Duration {
	if d.t.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return time.Until(d.t)
}

// Time returns the absolute deadline and whether one is set.
func (d Deadline) Time() (time.Time, bool) { return d.t, !d.t.IsZero() }

// Earlier returns the sooner of d and o, treating "no deadline" as
// infinitely late.
func (d Deadline) Earlier(o Deadline) Deadline {
	switch {
	case d.t.IsZero():
		return o
	case o.t.IsZero():
		return d
	case o.t.Before(d.t):
		return o
	default:
		return d
	}
}

// UnixNanos encodes the deadline for the wire: absolute Unix nanoseconds,
// 0 when unset.
func (d Deadline) UnixNanos() int64 {
	if d.t.IsZero() {
		return 0
	}
	return d.t.UnixNano()
}

// FromUnixNanos decodes a wire deadline (0 = none).
func FromUnixNanos(n int64) Deadline {
	if n == 0 {
		return Deadline{}
	}
	return Deadline{t: time.Unix(0, n)}
}
