// Package query defines the request/response vocabulary shared by every
// execution layer: the network front door, the async executor, the batch
// coalescer, the shard router, the replica group and the simulated server
// all speak the same pair of calls,
//
//	Exec(req Request) Result
//	ExecBatch(req BatchRequest) BatchResult
//
// instead of one method per combination of (traced, session-bound,
// batched). A Request carries everything that used to be threaded through
// method-name variants — the optional trace span, the client session,
// a consistency override and the request deadline — so adding a new
// cross-cutting field (deadlines were the forcing case) costs one struct
// field instead of doubling an Exec* surface.
//
// The package is a leaf: it depends only on obs (spans) and sqlmini
// (ExecInfo), so every layer can import it without cycles.
package query

import (
	"errors"

	"repro/internal/obs"
	"repro/internal/sqlmini"
)

// ErrOverloaded is returned (or sent over the wire) when admission control
// sheds a request instead of queueing it. The promise: the request was
// rejected before any side effect — it did not execute, did not touch the
// WAL, and may be retried.
var ErrOverloaded = errors.New("query: server overloaded")

// ErrConnLost is returned when the connection carrying a request died with
// the request's outcome unknown: the frame (or its response) was lost with
// the stream. It is the retryable transport sentinel — an idempotent read
// may be re-sent on a new connection; a write must not be, because the
// server may have executed it before the connection died (the client
// re-sends a write only when it can prove the frame never fully left this
// process, in which case the server cannot have seen it).
var ErrConnLost = errors.New("query: connection lost")

// ErrDeadlineExceeded is returned when a request's deadline expires before
// the layer holding it could finish. A write rejected with this error
// before the primary executed it had no effect; a write abandoned in the
// WAL commit wait may have executed but was never acknowledged — either
// way the client receives exactly one error and never a half-ack.
var ErrDeadlineExceeded = errors.New("query: deadline exceeded")

// Consistency selects which replicas may serve a read. The zero value
// defers to the serving group's configured default, so a Request built
// with a struct literal inherits the group policy.
type Consistency int

const (
	// ConsistencyDefault defers to the replica group's configured level.
	ConsistencyDefault Consistency = iota
	// Strong reads observe every acknowledged write (primary watermark).
	Strong
	// BoundedStaleness reads may lag the primary by the group's bound.
	BoundedStaleness
	// ReadYourWrites reads observe at least this session's own writes.
	ReadYourWrites
)

func (c Consistency) String() string {
	switch c {
	case Strong:
		return "strong"
	case BoundedStaleness:
		return "bounded"
	case ReadYourWrites:
		return "session"
	default:
		return "default"
	}
}

// Request is one statement execution. Name/SQL/Args are required; the rest
// are optional cross-cutting context:
//
//   - Span: parent trace span; layers hang their children off it. Nil
//     means untraced (obs spans are nil-safe).
//   - Session: the client's session token for read-your-writes and
//     session-scoped staleness bookkeeping. Nil means sessionless.
//   - Consistency: per-request override of the serving group's read
//     consistency; ConsistencyDefault inherits.
//   - Deadline: absolute give-up time. The zero Deadline never expires.
type Request struct {
	Name string
	SQL  string
	Args []any

	Span        *obs.Span
	Session     *Session
	Consistency Consistency
	Deadline    Deadline
}

// Req builds a plain Request — the common test/caller shorthand.
func Req(name, sql string, args []any) Request {
	return Request{Name: name, SQL: sql, Args: args}
}

// WithSpan returns a copy of the request carrying sp.
func (r Request) WithSpan(sp *obs.Span) Request { r.Span = sp; return r }

// WithSession returns a copy of the request bound to sess.
func (r Request) WithSession(sess *Session) Request { r.Session = sess; return r }

// WithDeadline returns a copy of the request carrying dl.
func (r Request) WithDeadline(dl Deadline) Request { r.Deadline = dl; return r }

// BatchRequest is one set-oriented execution: the same statement over
// ArgSets, submitted in a single round trip. Context fields mirror
// Request and apply to the batch as a whole (Deadline is the earliest
// deadline among the coalesced members).
type BatchRequest struct {
	Name    string
	SQL     string
	ArgSets [][]any

	Span        *obs.Span
	Session     *Session
	Consistency Consistency
	Deadline    Deadline
}

// BatchReq builds a plain BatchRequest.
func BatchReq(name, sql string, argSets [][]any) BatchRequest {
	return BatchRequest{Name: name, SQL: sql, ArgSets: argSets}
}

// WithSpan returns a copy of the batch request carrying sp.
func (r BatchRequest) WithSpan(sp *obs.Span) BatchRequest { r.Span = sp; return r }

// WithSession returns a copy of the batch request bound to sess.
func (r BatchRequest) WithSession(sess *Session) BatchRequest { r.Session = sess; return r }

// WithDeadline returns a copy of the batch request carrying dl.
func (r BatchRequest) WithDeadline(dl Deadline) BatchRequest { r.Deadline = dl; return r }

// Result is the outcome of one Exec. Exactly one of Value/Err is
// meaningful; Info carries the executor's page/row accounting when the
// backend produces it (zero otherwise).
type Result struct {
	Value any
	Err   error
	Info  sqlmini.ExecInfo
}

// Pair unpacks the result into the classic (value, error) shape.
func (r Result) Pair() (any, error) { return r.Value, r.Err }

// Ok wraps a successful value.
func Ok(v any) Result { return Result{Value: v} }

// Fail wraps an error.
func Fail(err error) Result { return Result{Err: err} }

// BatchResult is the outcome of one ExecBatch: Values[i]/Errs[i]
// correspond to ArgSets[i]. Both slices always have len(ArgSets).
type BatchResult struct {
	Values []any
	Errs   []error
	Info   sqlmini.ExecInfo
}

// Pair unpacks the batch result into the classic (values, errs) shape.
func (b BatchResult) Pair() ([]any, []error) { return b.Values, b.Errs }

// FailAll builds a BatchResult with every member failed with err.
func FailAll(n int, err error) BatchResult {
	b := BatchResult{Values: make([]any, n), Errs: make([]error, n)}
	for i := range b.Errs {
		b.Errs[i] = err
	}
	return b
}

// Executor is the single execution surface every layer implements:
// server.Server, replica.Group, shard.Router, the net client — all are
// Executors, so layers stack by wrapping one Executor in another.
type Executor interface {
	Exec(req Request) Result
	ExecBatch(req BatchRequest) BatchResult
}
