package interp

import "fmt"

// This file holds the runtime half of the slot-compiled evaluator: the flat
// frame, the execution machine, and the boxed-constant pools. The compiler
// that produces the closures the machine runs is in compile.go.

// unsetType marks a frame slot whose variable has not been assigned yet. It
// plays the role a missing map key plays in the tree-walking evaluator, so
// "variable undefined" errors surface identically on both paths.
type unsetType struct{}

func (unsetType) String() string { return "<unset>" }

var unsetVal Value = unsetType{}

// smallInts interns boxed int64 values so hot arithmetic loops do not
// allocate on every interface conversion (the Go runtime only caches
// 0..255). 8192 covers the counters and accumulators of the benchmark
// kernels.
const smallIntCount = 8192

var smallInts [smallIntCount]Value

func init() {
	for i := range smallInts {
		smallInts[i] = int64(i)
	}
}

func boxInt(i int64) Value {
	if i >= 0 && i < smallIntCount {
		return smallInts[i]
	}
	return i
}

var (
	valTrue  Value = true
	valFalse Value = false
)

func boxBool(b bool) Value {
	if b {
		return valTrue
	}
	return valFalse
}

// signal is a compiled statement's control-flow outcome.
type signal uint8

const (
	sigNext   signal = iota // fall through to the next statement
	sigReturn               // a Return executed; machine.ret holds the values
)

// machine is the per-run execution state of a compiled Program.
type machine struct {
	in    *Interp
	prog  *Program
	frame []Value   // slot-addressed variables (unsetVal = unassigned)
	ret   []Value   // values of the Return statement that ended the run
	calls []Builtin // per-call-site resolved builtins (lazy, nil = unresolved)
	steps int
	max   int
}

func (m *machine) step() error {
	m.steps++
	if m.steps > m.max {
		return fmt.Errorf("step limit exceeded (%d)", m.max)
	}
	return nil
}

// resolve binds call site idx to its builtin, checking arity against the
// registry exactly as the tree evaluator does on every call. Resolution is
// cached per run, so rebinding builtins between runs stays visible.
func (m *machine) resolve(idx int) (Builtin, error) {
	cs := m.prog.calls[idx]
	f, ok := m.in.Funcs[cs.fn]
	if !ok {
		return nil, fmt.Errorf("function %q not implemented", cs.fn)
	}
	if m.in.Reg != nil {
		if sig := m.in.Reg.Lookup(cs.fn); sig != nil && sig.NArgs >= 0 && sig.NArgs != cs.nargs {
			return nil, fmt.Errorf("%s expects %d args, got %d", cs.fn, sig.NArgs, cs.nargs)
		}
	}
	m.calls[idx] = f
	return f, nil
}

// recordAt reads slot as a *Record with the tree evaluator's error messages.
func (m *machine) recordAt(slot int, name string) (*Record, error) {
	v := m.frame[slot]
	if v == unsetVal {
		return nil, fmt.Errorf("record %q undefined", name)
	}
	r, ok := v.(*Record)
	if !ok {
		return nil, fmt.Errorf("%q is %s, not record", name, TypeName(v))
	}
	return r, nil
}

// tableAt reads slot as a *Table.
func (m *machine) tableAt(slot int, name string) (*Table, error) {
	v := m.frame[slot]
	if v == unsetVal {
		return nil, fmt.Errorf("table %q undefined", name)
	}
	t, ok := v.(*Table)
	if !ok {
		return nil, fmt.Errorf("%q is %s, not table", name, TypeName(v))
	}
	return t, nil
}
