package interp

import "fmt"

// Equivalent reports whether two values from *separate runs* are
// observationally equivalent. Equal compares handles, records and tables by
// identity, which is right within one run but useless for differential
// testing of two evaluators: each run materialises its own handles and
// records. Equivalent compares handles by their fetched results (Fetch is
// idempotent), records field-wise and tables record-wise; everything else
// falls back to Equal.
func Equivalent(a, b Value) bool {
	switch x := a.(type) {
	case Handle:
		y, ok := b.(Handle)
		if !ok {
			return false
		}
		xv, xerr := x.Fetch()
		yv, yerr := y.Fetch()
		if (xerr != nil) != (yerr != nil) {
			return false
		}
		if xerr != nil {
			return xerr.Error() == yerr.Error()
		}
		return Equivalent(xv, yv)
	case *Record:
		y, ok := b.(*Record)
		if !ok || len(x.Fields) != len(y.Fields) {
			return false
		}
		for k, v := range x.Fields {
			w, ok := y.Fields[k]
			if !ok || !Equivalent(v, w) {
				return false
			}
		}
		return true
	case *Table:
		y, ok := b.(*Table)
		if !ok || len(x.Records) != len(y.Records) {
			return false
		}
		for i := range x.Records {
			if !Equivalent(x.Records[i], y.Records[i]) {
				return false
			}
		}
		return true
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equivalent(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	}
	return Equal(a, b)
}

// EquivalentEnv compares two final environments (Result.Env) from separate
// runs, returning a descriptive error on the first mismatch.
func EquivalentEnv(a, b map[string]Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("environment sizes differ: %d vs %d keys", len(a), len(b))
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok {
			return fmt.Errorf("variable %q present in one environment only", k)
		}
		if !Equivalent(v, w) {
			return fmt.Errorf("variable %q differs: %s vs %s", k, Format(v), Format(w))
		}
	}
	return nil
}

// EquivalentResult compares two Results from separate runs of the same
// program: return values, output streams and final environments.
func EquivalentResult(a, b *Result) error {
	if len(a.Returned) != len(b.Returned) {
		return fmt.Errorf("return arity differs: %d vs %d", len(a.Returned), len(b.Returned))
	}
	for i := range a.Returned {
		if !Equivalent(a.Returned[i], b.Returned[i]) {
			return fmt.Errorf("return %d differs: %s vs %s", i,
				Format(a.Returned[i]), Format(b.Returned[i]))
		}
	}
	if a.Output != b.Output {
		return fmt.Errorf("output streams differ:\n--- a ---\n%s--- b ---\n%s", a.Output, b.Output)
	}
	return EquivalentEnv(a.Env, b.Env)
}
