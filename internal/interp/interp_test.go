package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/minilang"
)

func run(t *testing.T, src string, args ...Value) *Result {
	t.Helper()
	in := New(ir.NewRegistry(), nil)
	res, err := in.Run(minilang.MustParse(src), args)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func runErr(t *testing.T, src string, args ...Value) error {
	t.Helper()
	in := New(ir.NewRegistry(), nil)
	_, err := in.Run(minilang.MustParse(src), args)
	if err == nil {
		t.Fatalf("expected error")
	}
	return err
}

func TestArithmetic(t *testing.T) {
	res := run(t, `proc a(x) { y = (x + 3) * 2 - 8 / 4 % 3; return y; }`, int64(5))
	if res.Returned[0] != int64(14) {
		t.Fatalf("got %v", res.Returned[0])
	}
}

func TestShortCircuit(t *testing.T) {
	// RHS of && must not evaluate when LHS is false: division by zero
	// would fail otherwise.
	res := run(t, `proc sc(x) { ok = x > 100 && 1 / (x - x) == 0; return ok; }`, int64(5))
	if res.Returned[0] != false {
		t.Fatalf("got %v", res.Returned[0])
	}
}

func TestWhileAndGuards(t *testing.T) {
	res := run(t, `
proc g(n) {
  i = 0;
  even = 0;
  odd = 0;
  while (i < n) {
    c = i % 2 == 0;
    c ? even = even + 1;
    !c ? odd = odd + 1;
    i = i + 1;
  }
  return even, odd;
}`, int64(7))
	if res.Returned[0] != int64(4) || res.Returned[1] != int64(3) {
		t.Fatalf("got %v", res.Returned)
	}
}

func TestListValueSemantics(t *testing.T) {
	// Assignment copies: mutating the original must not affect the copy.
	res := run(t, `
proc v(l) {
  snapshot = l;
  x = removeFirst(l);
  return size(snapshot), size(l), x;
}`, NewList(int64(1), int64(2), int64(3)))
	if res.Returned[0] != int64(3) || res.Returned[1] != int64(2) || res.Returned[2] != int64(1) {
		t.Fatalf("value semantics broken: %v", res.Returned)
	}
}

func TestRecordTableConditionalLoad(t *testing.T) {
	res := run(t, `
proc rt(n) {
  table t0;
  i = 0;
  while (i < n) {
    record r0;
    c = i % 2 == 0;
    c ? r0.v = i * 10;
    append(t0, r0);
    i = i + 1;
  }
  v = -1;
  s = 0;
  scan r in t0 {
    load v = r.v;
    s = s + v;
  }
  return s;
}`, int64(4))
	// iterations: v set to 0, stays 0 (i=1 unset), set 20, stays 20:
	// s = 0 + 0 + 20 + 20 = 40. The conditional load preserves the prior
	// value exactly like Rule A requires.
	if res.Returned[0] != int64(40) {
		t.Fatalf("conditional load semantics: got %v, want 40", res.Returned[0])
	}
}

func TestForeachSnapshot(t *testing.T) {
	// foreach iterates a snapshot: growing the list inside the loop must
	// not extend the iteration.
	res := run(t, `
proc fs(l) {
  n = 0;
  foreach x in l {
    push(l, x + 100);
    n = n + 1;
  }
  return n, size(l);
}`, NewList(int64(1), int64(2)))
	if res.Returned[0] != int64(2) || res.Returned[1] != int64(4) {
		t.Fatalf("got %v", res.Returned)
	}
}

func TestOutputCapture(t *testing.T) {
	res := run(t, `proc o() { print(1, "a"); log(true); return 0; }`)
	want := "1 a\ntrue\n"
	if res.Output != want {
		t.Fatalf("got %q, want %q", res.Output, want)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
		args []Value
	}{
		{`proc e() { return x; }`, "undefined", nil},
		{`proc e() { y = 1 / 0; return y; }`, "division by zero", nil},
		{`proc e() { y = 1 + "a"; return y; }`, "+ on", nil},
		{`proc e() { while (3) { } return 0; }`, "not bool", nil},
		{`proc e(l) { y = removeFirst(l); return y; }`, "empty list", []Value{NewList()}},
		{`proc e() { y = nosuchfn(1); return y; }`, "not implemented", nil},
		{`proc e() { c ? y = 1; return y; }`, "guard", nil},
		{`proc e(l) { y = size(l, l); return y; }`, "expects", []Value{NewList()}},
	}
	for _, c := range cases {
		err := runErr(t, c.src, c.args...)
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not mention %q", err, c.frag)
		}
	}
}

func TestStepLimit(t *testing.T) {
	in := New(ir.NewRegistry(), nil)
	in.MaxSteps = 1000
	_, err := in.Run(minilang.MustParse(`proc inf() { while (true) { x = 1; } return 0; }`), nil)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step limit error, got %v", err)
	}
}

func TestDivmod(t *testing.T) {
	res := run(t, `proc d(a, b) { q, r = divmod(a, b); return q, r; }`, int64(17), int64(5))
	if res.Returned[0] != int64(3) || res.Returned[1] != int64(2) {
		t.Fatalf("got %v", res.Returned)
	}
}

func TestFormatDeterminism(t *testing.T) {
	r := Row{"b": int64(2), "a": int64(1), "c": "x"}
	if Format(r) != "{a=1, b=2, c=x}" {
		t.Fatalf("row format not sorted: %s", Format(r))
	}
}

func TestEqualValues(t *testing.T) {
	if !Equal(NewList(int64(1), "a"), NewList(int64(1), "a")) {
		t.Error("equal lists")
	}
	if Equal(NewList(int64(1)), NewList(int64(2))) {
		t.Error("unequal lists")
	}
	if !Equal(Row{"a": int64(1)}, Row{"a": int64(1)}) {
		t.Error("equal rows")
	}
	if Equal(Row{"a": int64(1)}, Row{"a": int64(2)}) {
		t.Error("unequal rows")
	}
	if !Equal(Rows{{"a": int64(1)}}, Rows{{"a": int64(1)}}) {
		t.Error("equal rows slices")
	}
}

// Property: integer arithmetic in the interpreter matches Go semantics.
func TestArithQuick(t *testing.T) {
	proc := minilang.MustParse(`proc f(a, b) { c = a * 3 + b - a % 7; return c; }`)
	in := New(ir.NewRegistry(), nil)
	prop := func(a, b int32) bool {
		res, err := in.Run(proc, []Value{int64(a), int64(b)})
		if err != nil {
			return false
		}
		want := int64(a)*3 + int64(b) - int64(a)%7
		return res.Returned[0] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: list round-trips preserve contents through record fields.
func TestListThroughRecordQuick(t *testing.T) {
	proc := minilang.MustParse(`
proc lr(l) {
  record r0;
  r0.l = l;
  clear(l);
  load m = r0.l;
  return size(m);
}`)
	in := New(ir.NewRegistry(), nil)
	prop := func(n uint8) bool {
		items := make([]Value, int(n)%20)
		for i := range items {
			items[i] = int64(i)
		}
		res, err := in.Run(proc, []Value{NewList(items...)})
		if err != nil {
			return false
		}
		// The field captured a copy before clear.
		return res.Returned[0] == int64(len(items))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
