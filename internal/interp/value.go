// Package interp is a tree-walking interpreter for the internal/ir
// mini-language. It executes both original (blocking) and transformed
// (asynchronous) programs against a pluggable QueryService, which is how the
// test suite checks semantic equivalence of transformations and how the
// experiment harness measures end-to-end running times.
package interp

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a runtime value: int64, string, bool, nil, *List, *Record,
// *Table, Row, Rows, or a query Handle.
type Value = any

// List is a mutable sequence. The mini-language has VALUE semantics for
// lists: assignment, record-field capture and record-field restore all copy,
// so the reader/writer stubs of Rule C are sound for list-valued variables
// too. Mutating builtins (removeFirst, push, ...) operate in place on the
// list bound to the named variable.
type List struct {
	Items []Value
}

// NewList builds a list from items.
func NewList(items ...Value) *List { return &List{Items: items} }

// Copy deep-copies the list (one level: elements are themselves copied via
// copyValue).
func (l *List) Copy() *List {
	items := make([]Value, len(l.Items))
	for i, v := range l.Items {
		items[i] = copyValue(v)
	}
	return &List{Items: items}
}

// Row is one result row of a query: column name to value.
type Row map[string]Value

// Rows is a query result set.
type Rows []Row

// Record is the per-iteration carrier introduced by Rule A. Unset fields are
// simply absent, which implements the conditional restores of the second
// loop.
type Record struct {
	Fields map[string]Value
}

// NewRecord returns an empty record.
func NewRecord() *Record { return &Record{Fields: map[string]Value{}} }

// Set stores a field (copying list values).
func (r *Record) Set(field string, v Value) { r.Fields[field] = copyValue(v) }

// Get returns the field value and whether it was set.
func (r *Record) Get(field string) (Value, bool) {
	v, ok := r.Fields[field]
	return v, ok
}

// Table is an insertion-ordered collection of records (the temporary table
// of Rule A; insertion order plays the role of the paper's loop key).
type Table struct {
	Records []*Record
}

// Append adds a record.
func (t *Table) Append(r *Record) { t.Records = append(t.Records, r) }

// Handle is a pending asynchronous query. Fetch blocks until the result is
// available (the observer model of §II).
type Handle interface {
	Fetch() (Value, error)
}

// QueryService executes queries for the interpreter. name is the prepared
// query's name, sql its text; args are the bound parameters.
type QueryService interface {
	// Exec runs the query synchronously (the paper's executeQuery).
	Exec(name, sql string, args []Value) (Value, error)
	// Submit starts the query and returns immediately (submitQuery).
	Submit(name, sql string, args []Value) (Handle, error)
}

// copyValue implements the value semantics: lists copy, scalars and
// reference-ish values (records, tables, rows, handles) pass through.
func copyValue(v Value) Value {
	if l, ok := v.(*List); ok {
		return l.Copy()
	}
	return v
}

// Truthy converts a value used as a condition; non-bool conditions are
// errors.
func truthy(v Value) (bool, error) {
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("condition is %s, not bool", TypeName(v))
	}
	return b, nil
}

// TypeName names a value's type for error messages.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case int64:
		return "int"
	case string:
		return "string"
	case bool:
		return "bool"
	case *List:
		return "list"
	case *Record:
		return "record"
	case *Table:
		return "table"
	case Row:
		return "row"
	case Rows:
		return "rows"
	case Handle:
		return "handle"
	}
	return fmt.Sprintf("%T", v)
}

// Format renders a value deterministically (used by print/log and by
// equivalence checks).
func Format(v Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case int64:
		return fmt.Sprintf("%d", x)
	case string:
		return x
	case bool:
		return fmt.Sprintf("%t", x)
	case *List:
		parts := make([]string, len(x.Items))
		for i, it := range x.Items {
			parts[i] = Format(it)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case Row:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + Format(x[k])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case Rows:
		parts := make([]string, len(x))
		for i, r := range x {
			parts[i] = Format(r)
		}
		return "rows(" + strings.Join(parts, "; ") + ")"
	case *Record:
		keys := make([]string, 0, len(x.Fields))
		for k := range x.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + Format(x.Fields[k])
		}
		return "record{" + strings.Join(parts, ", ") + "}"
	case *Table:
		return fmt.Sprintf("table(%d records)", len(x.Records))
	}
	return fmt.Sprintf("%v", v)
}

// Equal compares two values structurally (lists element-wise, rows
// field-wise). Handles compare by identity.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	case Row:
		y, ok := b.(Row)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !Equal(v, w) {
				return false
			}
		}
		return true
	case Rows:
		y, ok := b.(Rows)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	return a == b
}
