package interp

import (
	"fmt"
	"strings"
)

// bindStdlib installs the implementations for ir.StdSigs.
func (in *Interp) bindStdlib() {
	one := func(v Value) []Value { return []Value{v} }

	in.Bind("empty", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		return one(len(l.Items) == 0), nil
	})
	sizeFn := func(a []Value) ([]Value, error) {
		switch x := a[0].(type) {
		case *List:
			return one(int64(len(x.Items))), nil
		case Rows:
			return one(int64(len(x))), nil
		case string:
			return one(int64(len(x))), nil
		}
		return nil, fmt.Errorf("size of %s", TypeName(a[0]))
	}
	in.Bind("size", sizeFn)
	in.Bind("len", sizeFn)
	in.Bind("first", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		if len(l.Items) == 0 {
			return nil, fmt.Errorf("first of empty list")
		}
		return one(copyValue(l.Items[0])), nil
	})
	in.Bind("get", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		i, err := asInt(a[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(l.Items) {
			return nil, fmt.Errorf("index %d out of range [0,%d)", i, len(l.Items))
		}
		return one(copyValue(l.Items[i])), nil
	})
	in.Bind("peek", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		if len(l.Items) == 0 {
			return nil, fmt.Errorf("peek of empty list")
		}
		return one(copyValue(l.Items[len(l.Items)-1])), nil
	})
	in.Bind("list", func(a []Value) ([]Value, error) {
		return one(NewList(a...).Copy()), nil
	})
	in.Bind("concat", func(a []Value) ([]Value, error) {
		l1, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		l2, err := asList(a[1])
		if err != nil {
			return nil, err
		}
		out := l1.Copy()
		out.Items = append(out.Items, l2.Copy().Items...)
		return one(out), nil
	})
	in.Bind("min", func(a []Value) ([]Value, error) { return cmp2(a, true) })
	in.Bind("max", func(a []Value) ([]Value, error) { return cmp2(a, false) })
	in.Bind("field", func(a []Value) ([]Value, error) {
		name, err := asString(a[1])
		if err != nil {
			return nil, err
		}
		switch x := a[0].(type) {
		case Row:
			v, ok := x[name]
			if !ok {
				return nil, fmt.Errorf("row has no column %q", name)
			}
			return one(v), nil
		case Rows:
			if len(x) == 0 {
				return one(nil), nil
			}
			v, ok := x[0][name]
			if !ok {
				return nil, fmt.Errorf("row has no column %q", name)
			}
			return one(v), nil
		}
		return nil, fmt.Errorf("field of %s", TypeName(a[0]))
	})
	in.Bind("rowcount", func(a []Value) ([]Value, error) {
		r, ok := a[0].(Rows)
		if !ok {
			return nil, fmt.Errorf("rowcount of %s", TypeName(a[0]))
		}
		return one(int64(len(r))), nil
	})
	in.Bind("rowat", func(a []Value) ([]Value, error) {
		r, ok := a[0].(Rows)
		if !ok {
			return nil, fmt.Errorf("rowat of %s", TypeName(a[0]))
		}
		i, err := asInt(a[1])
		if err != nil {
			return nil, err
		}
		if i < 0 || int(i) >= len(r) {
			return nil, fmt.Errorf("row index %d out of range", i)
		}
		return one(r[i]), nil
	})
	in.Bind("tostr", func(a []Value) ([]Value, error) {
		return one(Format(a[0])), nil
	})
	in.Bind("divmod", func(a []Value) ([]Value, error) {
		x, err := asInt(a[0])
		if err != nil {
			return nil, err
		}
		y, err := asInt(a[1])
		if err != nil {
			return nil, err
		}
		if y == 0 {
			return nil, fmt.Errorf("divmod by zero")
		}
		return []Value{x / y, x % y}, nil
	})
	in.Bind("hash", func(a []Value) ([]Value, error) {
		s := Format(a[0])
		var h int64 = 1469598103934665603
		for i := 0; i < len(s); i++ {
			h ^= int64(s[i])
			h *= 1099511628211
		}
		if h < 0 {
			h = -h
		}
		return one(h), nil
	})

	// Mutating collection operations.
	in.Bind("removeFirst", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		if len(l.Items) == 0 {
			return nil, fmt.Errorf("removeFirst of empty list")
		}
		v := l.Items[0]
		l.Items = l.Items[1:]
		return one(v), nil
	})
	in.Bind("removeLast", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		if len(l.Items) == 0 {
			return nil, fmt.Errorf("removeLast of empty list")
		}
		v := l.Items[len(l.Items)-1]
		l.Items = l.Items[:len(l.Items)-1]
		return one(v), nil
	})
	in.Bind("pop", func(a []Value) ([]Value, error) {
		return in.Funcs["removeLast"](a)
	})
	in.Bind("push", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		l.Items = append(l.Items, copyValue(a[1]))
		return nil, nil
	})
	in.Bind("add", func(a []Value) ([]Value, error) {
		return in.Funcs["push"](a)
	})
	in.Bind("clear", func(a []Value) ([]Value, error) {
		l, err := asList(a[0])
		if err != nil {
			return nil, err
		}
		l.Items = nil
		return nil, nil
	})

	// I/O.
	printer := func(a []Value) ([]Value, error) {
		parts := make([]string, len(a))
		for i, v := range a {
			parts[i] = Format(v)
		}
		in.Out.WriteString(strings.Join(parts, " "))
		in.Out.WriteByte('\n')
		return nil, nil
	}
	in.Bind("print", printer)
	in.Bind("log", printer)
	in.Bind("process", printer)

	// Opaque helpers from the paper's examples; deterministic defaults that
	// apps and tests may override.
	in.Bind("foo", func(a []Value) ([]Value, error) {
		var acc int64 = 17
		for _, v := range a {
			if i, ok := v.(int64); ok {
				acc = acc*31 + i
			}
		}
		return one(acc), nil
	})
	in.Bind("bar", func(a []Value) ([]Value, error) {
		return in.Funcs["foo"](a)
	})
	in.Bind("getParentCategory", func(a []Value) ([]Value, error) {
		// Integer category hierarchy: parent of c is c/2; 0 and 1 have no
		// parent (null), terminating walks.
		i, err := asInt(a[0])
		if err != nil {
			if a[0] == nil {
				return one(nil), nil
			}
			return nil, err
		}
		if i <= 1 {
			return one(nil), nil
		}
		return one(i / 2), nil
	})
	in.Bind("readInputCategory", func(a []Value) ([]Value, error) {
		return one(int64(100)), nil
	})
	in.Bind("recurse", func(a []Value) ([]Value, error) {
		return one(int64(0)), nil
	})
}

func cmp2(a []Value, min bool) ([]Value, error) {
	x, err := asInt(a[0])
	if err != nil {
		return nil, err
	}
	y, err := asInt(a[1])
	if err != nil {
		return nil, err
	}
	if (x < y) == min {
		return []Value{x}, nil
	}
	return []Value{y}, nil
}

func asList(v Value) (*List, error) {
	l, ok := v.(*List)
	if !ok {
		return nil, fmt.Errorf("want list, got %s", TypeName(v))
	}
	return l, nil
}

func asInt(v Value) (int64, error) {
	i, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("want int, got %s", TypeName(v))
	}
	return i, nil
}

func asString(v Value) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("want string, got %s", TypeName(v))
	}
	return s, nil
}
