package interp

import (
	"fmt"

	"repro/internal/ir"
)

// This file lowers ir.Proc into a slot-addressed executable form: variable
// names resolved to integer frame slots (ir.BuildSlots), guards precompiled
// to (slot, negation) pairs, prepared-query names resolved to indices,
// literals interned, binary operators dispatched on a small opcode instead
// of a string. Each statement and expression compiles to a closure over a
// *machine; running a program is then a chain of direct calls over a flat
// []Value frame, with none of the per-statement map traffic of the
// tree-walking evaluator in interp.go (kept as RunTree for differential
// testing).
//
// Observable behaviour — outputs, return values, final environments, error
// messages, step accounting — matches the tree evaluator exactly; the
// differential tests in internal/core and internal/experiments assert this
// over the property-test corpus and every evaluation app. One deliberate
// scope limit: builtins resolve once per call site per run, so rebinding a
// function with Interp.Bind *while a program is running* keeps the old
// binding until the run ends (rebinding between runs behaves identically
// on both paths).

// Program is a compiled procedure. Compile once, run many times (from any
// number of Interps; a Program is immutable after compilation and safe for
// concurrent RunProgram calls on distinct Interps).
type Program struct {
	proc       *ir.Proc
	slots      *ir.SlotTable
	paramSlots []int
	queries    []queryDecl
	calls      []callSite
	body       block
}

// Proc returns the procedure this program was compiled from.
func (p *Program) Proc() *ir.Proc { return p.proc }

type queryDecl struct{ name, sql string }

// callSite records one static function call for lazy per-run resolution.
type callSite struct {
	fn    string
	nargs int
}

type (
	stmtFn func(m *machine) (signal, error)
	exprFn func(m *machine) (Value, error)
	block  []stmtFn
)

func (b block) exec(m *machine) (signal, error) {
	for _, s := range b {
		sig, err := s(m)
		if err != nil || sig == sigReturn {
			return sig, err
		}
	}
	return sigNext, nil
}

// Compile lowers proc to its slot-addressed form. Compilation never fails:
// conditions the tree evaluator reports at execution time (unknown
// functions, undeclared queries, arity mismatches) compile to closures that
// produce the identical error when — and only when — they execute.
func Compile(proc *ir.Proc) *Program {
	slots := ir.BuildSlots(proc)
	p := &Program{proc: proc, slots: slots}
	c := &compiler{prog: p, queryIdx: make(map[string]int)}
	for _, prm := range proc.Params {
		s, _ := slots.Slot(prm)
		p.paramSlots = append(p.paramSlots, s)
	}
	// Later declarations of the same query name win, matching the map the
	// tree evaluator builds in RunTree.
	for _, q := range proc.Queries {
		if i, ok := c.queryIdx[q.Name]; ok {
			p.queries[i] = queryDecl{q.Name, q.SQL}
		} else {
			c.queryIdx[q.Name] = len(p.queries)
			p.queries = append(p.queries, queryDecl{q.Name, q.SQL})
		}
	}
	p.body = c.block(proc.Body)
	return p
}

type compiler struct {
	prog     *Program
	queryIdx map[string]int
}

// slot resolves a name collected by ir.BuildSlots; by construction every
// name the compiler meets is in the table.
func (c *compiler) slot(name string) int {
	i, ok := c.prog.slots.Slot(name)
	if !ok {
		panic(fmt.Sprintf("interp: name %q missing from slot table", name))
	}
	return i
}

func (c *compiler) block(b *ir.Block) block {
	if b == nil {
		return nil
	}
	out := make(block, len(b.Stmts))
	for i, s := range b.Stmts {
		out[i] = c.stmt(s)
	}
	return out
}

// stmt compiles one statement, wrapping the body with the step check and,
// when present, the precompiled guard.
func (c *compiler) stmt(s ir.Stmt) stmtFn {
	inner := c.stmtBody(s)
	if g := s.GetGuard(); g != nil {
		slot := c.slot(g.Var)
		name, neg := g.Var, g.Neg
		return func(m *machine) (signal, error) {
			if err := m.step(); err != nil {
				return sigNext, err
			}
			v := m.frame[slot]
			if v == unsetVal {
				return sigNext, fmt.Errorf("guard variable %q undefined", name)
			}
			b, err := truthy(v)
			if err != nil {
				return sigNext, fmt.Errorf("guard %s: %w", name, err)
			}
			if b == neg { // guard not satisfied
				return sigNext, nil
			}
			return inner(m)
		}
	}
	return func(m *machine) (signal, error) {
		if err := m.step(); err != nil {
			return sigNext, err
		}
		return inner(m)
	}
}

func (c *compiler) stmtBody(s ir.Stmt) stmtFn {
	switch x := s.(type) {
	case *ir.Assign:
		return c.assign(x)

	case *ir.ExecQuery:
		args := c.exprs(x.Args)
		qi, qok := c.queryIdx[x.Query]
		qname := x.Query
		lhs := c.optSlot(x.Lhs)
		return func(m *machine) (signal, error) {
			if m.in.Svc == nil {
				return sigNext, fmt.Errorf("no query service bound")
			}
			av, err := evalArgs(m, args)
			if err != nil {
				return sigNext, err
			}
			if !qok {
				return sigNext, fmt.Errorf("query %q not declared", qname)
			}
			q := &m.prog.queries[qi]
			v, err := m.in.Svc.Exec(q.name, q.sql, av)
			if err != nil {
				return sigNext, fmt.Errorf("execQuery %s: %w", qname, err)
			}
			if lhs >= 0 {
				m.frame[lhs] = v
			}
			return sigNext, nil
		}

	case *ir.Submit:
		args := c.exprs(x.Args)
		qi, qok := c.queryIdx[x.Query]
		qname := x.Query
		lhs := c.optSlot(x.Lhs)
		return func(m *machine) (signal, error) {
			if m.in.Svc == nil {
				return sigNext, fmt.Errorf("no query service bound")
			}
			av, err := evalArgs(m, args)
			if err != nil {
				return sigNext, err
			}
			if !qok {
				return sigNext, fmt.Errorf("query %q not declared", qname)
			}
			q := &m.prog.queries[qi]
			h, err := m.in.Svc.Submit(q.name, q.sql, av)
			if err != nil {
				return sigNext, fmt.Errorf("submit %s: %w", qname, err)
			}
			if lhs >= 0 {
				m.frame[lhs] = h
			}
			return sigNext, nil
		}

	case *ir.Fetch:
		hx := c.expr(x.Handle)
		lhs := c.optSlot(x.Lhs)
		return func(m *machine) (signal, error) {
			hv, err := hx(m)
			if err != nil {
				return sigNext, err
			}
			h, ok := hv.(Handle)
			if !ok {
				return sigNext, fmt.Errorf("fetch of non-handle %s", TypeName(hv))
			}
			v, err := h.Fetch()
			if err != nil {
				return sigNext, fmt.Errorf("fetch: %w", err)
			}
			if lhs >= 0 {
				m.frame[lhs] = v
			}
			return sigNext, nil
		}

	case *ir.CallStmt:
		call := c.call(x.Call, -1)
		return func(m *machine) (signal, error) {
			_, err := call(m)
			return sigNext, err
		}

	case *ir.Return:
		vals := c.exprs(x.Vals)
		return func(m *machine) (signal, error) {
			out, err := evalArgs(m, vals)
			if err != nil {
				return sigNext, err
			}
			if out == nil {
				out = []Value{}
			}
			m.ret = out
			return sigReturn, nil
		}

	case *ir.DeclTable:
		slot := c.slot(x.Name)
		return func(m *machine) (signal, error) {
			m.frame[slot] = &Table{}
			return sigNext, nil
		}

	case *ir.NewRecord:
		slot := c.slot(x.Name)
		return func(m *machine) (signal, error) {
			m.frame[slot] = NewRecord()
			return sigNext, nil
		}

	case *ir.SetField:
		rec, recName := c.slot(x.Record), x.Record
		field := x.Field
		val := c.expr(x.Val)
		return func(m *machine) (signal, error) {
			r, err := m.recordAt(rec, recName)
			if err != nil {
				return sigNext, err
			}
			v, err := val(m)
			if err != nil {
				return sigNext, err
			}
			r.Set(field, v)
			return sigNext, nil
		}

	case *ir.AppendRecord:
		tbl, tblName := c.slot(x.Table), x.Table
		rec, recName := c.slot(x.Record), x.Record
		return func(m *machine) (signal, error) {
			t, err := m.tableAt(tbl, tblName)
			if err != nil {
				return sigNext, err
			}
			r, err := m.recordAt(rec, recName)
			if err != nil {
				return sigNext, err
			}
			t.Append(r)
			return sigNext, nil
		}

	case *ir.LoadField:
		rec, recName := c.slot(x.Record), x.Record
		dst := c.slot(x.Var)
		field := x.Field
		return func(m *machine) (signal, error) {
			r, err := m.recordAt(rec, recName)
			if err != nil {
				return sigNext, err
			}
			if v, ok := r.Get(field); ok {
				m.frame[dst] = copyValue(v)
			}
			return sigNext, nil
		}

	case *ir.CopyField:
		src, srcName := c.slot(x.SrcRec), x.SrcRec
		dst, dstName := c.slot(x.DstRec), x.DstRec
		srcField, dstField := x.SrcField, x.DstField
		return func(m *machine) (signal, error) {
			sr, err := m.recordAt(src, srcName)
			if err != nil {
				return sigNext, err
			}
			dr, err := m.recordAt(dst, dstName)
			if err != nil {
				return sigNext, err
			}
			if v, ok := sr.Get(srcField); ok {
				dr.Set(dstField, v)
			}
			return sigNext, nil
		}

	case *ir.While:
		cond := c.expr(x.Cond)
		body := c.block(x.Body)
		return func(m *machine) (signal, error) {
			for {
				cv, err := cond(m)
				if err != nil {
					return sigNext, err
				}
				b, err := truthy(cv)
				if err != nil {
					return sigNext, fmt.Errorf("while condition: %w", err)
				}
				if !b {
					return sigNext, nil
				}
				if sig, err := body.exec(m); err != nil || sig == sigReturn {
					return sig, err
				}
				if err := m.step(); err != nil {
					return sigNext, err
				}
			}
		}

	case *ir.If:
		cond := c.expr(x.Cond)
		then := c.block(x.Then)
		els := c.block(x.Else)
		return func(m *machine) (signal, error) {
			cv, err := cond(m)
			if err != nil {
				return sigNext, err
			}
			b, err := truthy(cv)
			if err != nil {
				return sigNext, fmt.Errorf("if condition: %w", err)
			}
			if b {
				return then.exec(m)
			}
			return els.exec(m)
		}

	case *ir.ForEach:
		coll := c.expr(x.Coll)
		slot := c.slot(x.Var)
		body := c.block(x.Body)
		return func(m *machine) (signal, error) {
			cv, err := coll(m)
			if err != nil {
				return sigNext, err
			}
			items, err := iterable(cv)
			if err != nil {
				return sigNext, fmt.Errorf("foreach: %w", err)
			}
			for _, it := range items {
				m.frame[slot] = copyValue(it)
				if sig, err := body.exec(m); err != nil || sig == sigReturn {
					return sig, err
				}
			}
			return sigNext, nil
		}

	case *ir.Scan:
		tbl, tblName := c.slot(x.Table), x.Table
		rec := c.slot(x.Record)
		body := c.block(x.Body)
		return func(m *machine) (signal, error) {
			t, err := m.tableAt(tbl, tblName)
			if err != nil {
				return sigNext, err
			}
			for _, r := range t.Records {
				m.frame[rec] = r
				if sig, err := body.exec(m); err != nil || sig == sigReturn {
					return sig, err
				}
			}
			return sigNext, nil
		}
	}

	return func(m *machine) (signal, error) {
		return sigNext, fmt.Errorf("unknown statement %T", s)
	}
}

// optSlot resolves a possibly-empty assignment target (-1 = discard).
func (c *compiler) optSlot(name string) int {
	if name == "" {
		return -1
	}
	return c.slot(name)
}

func (c *compiler) assign(x *ir.Assign) stmtFn {
	if len(x.Lhs) == 1 {
		slot := c.slot(x.Lhs[0])
		rhs := c.expr(x.Rhs)
		return func(m *machine) (signal, error) {
			v, err := rhs(m)
			if err != nil {
				return sigNext, err
			}
			m.frame[slot] = copyValue(v)
			return sigNext, nil
		}
	}
	if call, ok := x.Rhs.(*ir.Call); ok {
		fn := c.call(call, len(x.Lhs))
		slots := make([]int, len(x.Lhs))
		for i, l := range x.Lhs {
			slots[i] = c.slot(l)
		}
		return func(m *machine) (signal, error) {
			vals, err := fn(m)
			if err != nil {
				return sigNext, err
			}
			for i, sl := range slots {
				m.frame[sl] = copyValue(vals[i])
			}
			return sigNext, nil
		}
	}
	// Multi-assignment from a non-call expression: the tree evaluator
	// evaluates the expression (for its errors) and then rejects it; keep
	// the same lazy failure.
	rhs := c.expr(x.Rhs)
	n := len(x.Lhs)
	return func(m *machine) (signal, error) {
		if _, err := rhs(m); err != nil {
			return sigNext, err
		}
		return sigNext, fmt.Errorf("expression yields 1 value, want %d", n)
	}
}

// call compiles a function invocation. want is the required result count
// (-1 = any). Builtins resolve lazily per run through machine.calls so
// Interp.Bind between runs behaves exactly as on the tree path.
func (c *compiler) call(x *ir.Call, want int) func(m *machine) ([]Value, error) {
	idx := len(c.prog.calls)
	c.prog.calls = append(c.prog.calls, callSite{fn: x.Fn, nargs: len(x.Args)})
	args := c.exprs(x.Args)
	name := x.Fn
	return func(m *machine) ([]Value, error) {
		f := m.calls[idx]
		if f == nil {
			var err error
			if f, err = m.resolve(idx); err != nil {
				return nil, err
			}
		}
		av, err := evalArgs(m, args)
		if err != nil {
			return nil, err
		}
		out, err := f(av)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		if want >= 0 && len(out) != want {
			return nil, fmt.Errorf("%s returned %d values, want %d", name, len(out), want)
		}
		return out, nil
	}
}

func (c *compiler) exprs(es []ir.Expr) []exprFn {
	if len(es) == 0 {
		return nil
	}
	out := make([]exprFn, len(es))
	for i, e := range es {
		out[i] = c.expr(e)
	}
	return out
}

// evalArgs evaluates an argument list; nil in, nil out (matching the tree
// evaluator's evalAll).
func evalArgs(m *machine, es []exprFn) ([]Value, error) {
	if len(es) == 0 {
		return nil, nil
	}
	out := make([]Value, len(es))
	for i, e := range es {
		v, err := e(m)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (c *compiler) expr(e ir.Expr) exprFn {
	switch x := e.(type) {
	case *ir.Var:
		slot := c.slot(x.Name)
		name := x.Name
		return func(m *machine) (Value, error) {
			v := m.frame[slot]
			if v == unsetVal {
				return nil, fmt.Errorf("variable %q undefined", name)
			}
			return v, nil
		}

	case *ir.Lit:
		v := x.V // interned: boxed once at compile time
		if i, ok := v.(int64); ok {
			v = boxInt(i)
		} else if b, ok := v.(bool); ok {
			v = boxBool(b)
		}
		return func(*machine) (Value, error) { return v, nil }

	case *ir.Un:
		operand := c.expr(x.X)
		switch x.Op {
		case "!":
			return func(m *machine) (Value, error) {
				v, err := operand(m)
				if err != nil {
					return nil, err
				}
				b, err := truthy(v)
				if err != nil {
					return nil, err
				}
				return boxBool(!b), nil
			}
		case "-":
			return func(m *machine) (Value, error) {
				v, err := operand(m)
				if err != nil {
					return nil, err
				}
				i, ok := v.(int64)
				if !ok {
					return nil, fmt.Errorf("unary - on %s", TypeName(v))
				}
				return boxInt(-i), nil
			}
		}
		op := x.Op
		return func(m *machine) (Value, error) {
			if _, err := operand(m); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("unknown unary op %q", op)
		}

	case *ir.Bin:
		return c.bin(x)

	case *ir.Call:
		call := c.call(x, -1)
		return func(m *machine) (Value, error) {
			vals, err := call(m)
			if err != nil {
				return nil, err
			}
			if len(vals) == 0 {
				return nil, nil
			}
			return vals[0], nil
		}
	}

	return func(*machine) (Value, error) {
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

// Binary opcodes: the operator string is resolved once at compile time.
type binOp uint8

const (
	opBad binOp = iota
	opAdd
	opSub
	opMul
	opDiv
	opMod
	opLT
	opLE
	opGT
	opGE
)

var binOps = map[string]binOp{
	"+": opAdd, "-": opSub, "*": opMul, "/": opDiv, "%": opMod,
	"<": opLT, "<=": opLE, ">": opGT, ">=": opGE,
}

func (c *compiler) bin(x *ir.Bin) exprFn {
	l, r := c.expr(x.L), c.expr(x.R)
	switch x.Op {
	case "&&":
		return func(m *machine) (Value, error) {
			lv, err := l(m)
			if err != nil {
				return nil, err
			}
			lb, err := truthy(lv)
			if err != nil {
				return nil, err
			}
			if !lb {
				return valFalse, nil
			}
			rv, err := r(m)
			if err != nil {
				return nil, err
			}
			rb, err := truthy(rv)
			if err != nil {
				return nil, err
			}
			return boxBool(rb), nil
		}
	case "||":
		return func(m *machine) (Value, error) {
			lv, err := l(m)
			if err != nil {
				return nil, err
			}
			lb, err := truthy(lv)
			if err != nil {
				return nil, err
			}
			if lb {
				return valTrue, nil
			}
			rv, err := r(m)
			if err != nil {
				return nil, err
			}
			rb, err := truthy(rv)
			if err != nil {
				return nil, err
			}
			return boxBool(rb), nil
		}
	case "==":
		return func(m *machine) (Value, error) {
			lv, err := l(m)
			if err != nil {
				return nil, err
			}
			rv, err := r(m)
			if err != nil {
				return nil, err
			}
			return boxBool(Equal(lv, rv)), nil
		}
	case "!=":
		return func(m *machine) (Value, error) {
			lv, err := l(m)
			if err != nil {
				return nil, err
			}
			rv, err := r(m)
			if err != nil {
				return nil, err
			}
			return boxBool(!Equal(lv, rv)), nil
		}
	}

	code := binOps[x.Op] // opBad for unknown operators
	opStr := x.Op
	return func(m *machine) (Value, error) {
		lv, err := l(m)
		if err != nil {
			return nil, err
		}
		rv, err := r(m)
		if err != nil {
			return nil, err
		}
		return applyBin(code, opStr, lv, rv)
	}
}

// applyBin mirrors the operand typing rules of the tree evaluator's evalBin:
// "+" concatenates strings, the comparisons order strings, everything else
// is int64 arithmetic.
func applyBin(code binOp, opStr string, lv, rv Value) (Value, error) {
	if code == opAdd {
		if ls, ok := lv.(string); ok {
			rs, ok := rv.(string)
			if !ok {
				return nil, fmt.Errorf("+ on string and %s", TypeName(rv))
			}
			return ls + rs, nil
		}
	}
	li, lok := lv.(int64)
	ri, rok := rv.(int64)
	if !lok || !rok {
		if ls, ok := lv.(string); ok {
			if rs, ok := rv.(string); ok {
				switch code {
				case opLT:
					return boxBool(ls < rs), nil
				case opLE:
					return boxBool(ls <= rs), nil
				case opGT:
					return boxBool(ls > rs), nil
				case opGE:
					return boxBool(ls >= rs), nil
				}
			}
		}
		return nil, fmt.Errorf("%s on %s and %s", opStr, TypeName(lv), TypeName(rv))
	}
	switch code {
	case opAdd:
		return boxInt(li + ri), nil
	case opSub:
		return boxInt(li - ri), nil
	case opMul:
		return boxInt(li * ri), nil
	case opDiv:
		if ri == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return boxInt(li / ri), nil
	case opMod:
		if ri == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return boxInt(li % ri), nil
	case opLT:
		return boxBool(li < ri), nil
	case opLE:
		return boxBool(li <= ri), nil
	case opGT:
		return boxBool(li > ri), nil
	case opGE:
		return boxBool(li >= ri), nil
	}
	return nil, fmt.Errorf("unknown binary op %q", opStr)
}

// RunProgram executes a compiled program with the given positional
// arguments. It is the fast path behind Run; callers that compile once and
// run many times (asyncq.Run's cache, the experiments harness) use it
// directly.
func (in *Interp) RunProgram(p *Program, args []Value) (*Result, error) {
	proc := p.proc
	if len(args) != len(proc.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d",
			proc.Name, len(proc.Params), len(args))
	}
	in.Out.Reset()
	limit := in.MaxSteps
	if limit == 0 {
		limit = 50_000_000
	}
	m := machine{in: in, prog: p, frame: make([]Value, p.slots.Len()), max: limit}
	for i := range m.frame {
		m.frame[i] = unsetVal
	}
	for i, s := range p.paramSlots {
		m.frame[s] = copyValue(args[i])
	}
	if n := len(p.calls); n > 0 {
		m.calls = make([]Builtin, n)
	}
	sig, err := p.body.exec(&m)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", proc.Name, err)
	}
	var ret []Value
	if sig == sigReturn {
		ret = m.ret
	}
	env := make(map[string]Value, len(m.frame))
	for i, v := range m.frame {
		if v != unsetVal {
			env[p.slots.Name(i)] = v
		}
	}
	return &Result{Returned: ret, Env: env, Output: in.Out.String()}, nil
}
