package interp

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Builtin implements a registered function. Mutating builtins receive the
// *List bound to the variable and modify it in place.
type Builtin func(args []Value) ([]Value, error)

// Interp executes procedures. The zero value is not usable; call New.
type Interp struct {
	Reg   *ir.Registry
	Funcs map[string]Builtin
	// Svc executes queries; required if the program contains query
	// statements.
	Svc QueryService
	// MaxSteps bounds execution (0 = default 50M) so property tests cannot
	// hang on accidentally non-terminating random programs.
	MaxSteps int
	// Out receives print/log output; used for equivalence checks.
	Out strings.Builder

	steps int
	progs map[*ir.Proc]*Program // compiled-program cache for Run
}

// New builds an interpreter with the standard builtins bound.
func New(reg *ir.Registry, svc QueryService) *Interp {
	in := &Interp{Reg: reg, Funcs: map[string]Builtin{}, Svc: svc}
	in.bindStdlib()
	return in
}

// Bind registers (or replaces) a builtin implementation.
func (in *Interp) Bind(name string, fn Builtin) { in.Funcs[name] = fn }

// Result is the outcome of running a procedure.
type Result struct {
	Returned []Value
	Env      map[string]Value // final top-level environment
	Output   string           // accumulated print/log output
}

// Run executes proc with the given positional arguments through the
// slot-compiled fast path (see compile.go). Programs are compiled once per
// Interp and cached by proc identity, so repeated runs of the same
// procedure pay compilation only once. Because the cache is keyed by
// identity, a proc must not be mutated in place between Runs on the same
// Interp (clone first, as the transformation passes do) — the cached
// program would keep executing the pre-mutation code.
func (in *Interp) Run(proc *ir.Proc, args []Value) (*Result, error) {
	prog, ok := in.progs[proc]
	if !ok {
		prog = Compile(proc)
		if in.progs == nil {
			in.progs = make(map[*ir.Proc]*Program)
		} else if len(in.progs) >= progCacheMax {
			// Bounded like asyncq's source cache: a long-lived Interp fed
			// freshly parsed procs must not grow memory without limit.
			in.progs = make(map[*ir.Proc]*Program)
		}
		in.progs[proc] = prog
	}
	return in.RunProgram(prog, args)
}

// progCacheMax bounds the per-Interp compiled-program cache.
const progCacheMax = 256

// RunTree executes proc on the original tree-walking evaluator. It is the
// reference semantics the compiled path is differentially tested against
// (internal/core and internal/experiments); production callers use Run.
func (in *Interp) RunTree(proc *ir.Proc, args []Value) (*Result, error) {
	if len(args) != len(proc.Params) {
		return nil, fmt.Errorf("interp: %s expects %d args, got %d",
			proc.Name, len(proc.Params), len(args))
	}
	env := map[string]Value{}
	for i, p := range proc.Params {
		env[p] = copyValue(args[i])
	}
	in.steps = 0
	in.Out.Reset()
	queries := map[string]string{}
	for _, q := range proc.Queries {
		queries[q.Name] = q.SQL
	}
	ret, err := in.execBlock(proc.Body, env, queries)
	if err != nil {
		return nil, fmt.Errorf("interp: %s: %w", proc.Name, err)
	}
	return &Result{Returned: ret, Env: env, Output: in.Out.String()}, nil
}

func (in *Interp) step() error {
	in.steps++
	limit := in.MaxSteps
	if limit == 0 {
		limit = 50_000_000
	}
	if in.steps > limit {
		return fmt.Errorf("step limit exceeded (%d)", limit)
	}
	return nil
}

// execBlock runs a block; a non-nil first return means a Return statement
// executed.
func (in *Interp) execBlock(b *ir.Block, env map[string]Value, queries map[string]string) ([]Value, error) {
	if b == nil {
		return nil, nil
	}
	for _, s := range b.Stmts {
		ret, err := in.execStmt(s, env, queries)
		if err != nil {
			return nil, err
		}
		if ret != nil {
			return ret, nil
		}
	}
	return nil, nil
}

func (in *Interp) execStmt(s ir.Stmt, env map[string]Value, queries map[string]string) ([]Value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	if g := s.GetGuard(); g != nil {
		v, ok := env[g.Var]
		if !ok {
			return nil, fmt.Errorf("guard variable %q undefined", g.Var)
		}
		b, err := truthy(v)
		if err != nil {
			return nil, fmt.Errorf("guard %s: %w", g.Var, err)
		}
		if b == g.Neg { // guard not satisfied
			return nil, nil
		}
	}
	switch x := s.(type) {
	case *ir.Assign:
		vals, err := in.evalMulti(x.Rhs, env, len(x.Lhs))
		if err != nil {
			return nil, err
		}
		for i, l := range x.Lhs {
			env[l] = copyValue(vals[i])
		}
		return nil, nil
	case *ir.ExecQuery:
		if in.Svc == nil {
			return nil, fmt.Errorf("no query service bound")
		}
		args, err := in.evalAll(x.Args, env)
		if err != nil {
			return nil, err
		}
		sql, ok := queries[x.Query]
		if !ok {
			return nil, fmt.Errorf("query %q not declared", x.Query)
		}
		v, err := in.Svc.Exec(x.Query, sql, args)
		if err != nil {
			return nil, fmt.Errorf("execQuery %s: %w", x.Query, err)
		}
		if x.Lhs != "" {
			env[x.Lhs] = v
		}
		return nil, nil
	case *ir.Submit:
		if in.Svc == nil {
			return nil, fmt.Errorf("no query service bound")
		}
		args, err := in.evalAll(x.Args, env)
		if err != nil {
			return nil, err
		}
		sql, ok := queries[x.Query]
		if !ok {
			return nil, fmt.Errorf("query %q not declared", x.Query)
		}
		h, err := in.Svc.Submit(x.Query, sql, args)
		if err != nil {
			return nil, fmt.Errorf("submit %s: %w", x.Query, err)
		}
		if x.Lhs != "" {
			env[x.Lhs] = h
		}
		return nil, nil
	case *ir.Fetch:
		hv, err := in.eval(x.Handle, env)
		if err != nil {
			return nil, err
		}
		h, ok := hv.(Handle)
		if !ok {
			return nil, fmt.Errorf("fetch of non-handle %s", TypeName(hv))
		}
		v, err := h.Fetch()
		if err != nil {
			return nil, fmt.Errorf("fetch: %w", err)
		}
		if x.Lhs != "" {
			env[x.Lhs] = v
		}
		return nil, nil
	case *ir.CallStmt:
		_, err := in.eval(x.Call, env)
		return nil, err
	case *ir.Return:
		vals, err := in.evalAll(x.Vals, env)
		if err != nil {
			return nil, err
		}
		if vals == nil {
			vals = []Value{}
		}
		return vals, nil
	case *ir.DeclTable:
		env[x.Name] = &Table{}
		return nil, nil
	case *ir.NewRecord:
		env[x.Name] = NewRecord()
		return nil, nil
	case *ir.SetField:
		rec, err := in.record(x.Record, env)
		if err != nil {
			return nil, err
		}
		v, err := in.eval(x.Val, env)
		if err != nil {
			return nil, err
		}
		rec.Set(x.Field, v)
		return nil, nil
	case *ir.AppendRecord:
		tbl, err := in.table(x.Table, env)
		if err != nil {
			return nil, err
		}
		rec, err := in.record(x.Record, env)
		if err != nil {
			return nil, err
		}
		tbl.Append(rec)
		return nil, nil
	case *ir.LoadField:
		rec, err := in.record(x.Record, env)
		if err != nil {
			return nil, err
		}
		if v, ok := rec.Get(x.Field); ok {
			env[x.Var] = copyValue(v)
		}
		return nil, nil
	case *ir.CopyField:
		src, err := in.record(x.SrcRec, env)
		if err != nil {
			return nil, err
		}
		dst, err := in.record(x.DstRec, env)
		if err != nil {
			return nil, err
		}
		if v, ok := src.Get(x.SrcField); ok {
			dst.Set(x.DstField, v)
		}
		return nil, nil
	case *ir.While:
		for {
			cv, err := in.eval(x.Cond, env)
			if err != nil {
				return nil, err
			}
			b, err := truthy(cv)
			if err != nil {
				return nil, fmt.Errorf("while condition: %w", err)
			}
			if !b {
				return nil, nil
			}
			if ret, err := in.execBlock(x.Body, env, queries); err != nil || ret != nil {
				return ret, err
			}
			if err := in.step(); err != nil {
				return nil, err
			}
		}
	case *ir.If:
		cv, err := in.eval(x.Cond, env)
		if err != nil {
			return nil, err
		}
		b, err := truthy(cv)
		if err != nil {
			return nil, fmt.Errorf("if condition: %w", err)
		}
		if b {
			return in.execBlock(x.Then, env, queries)
		}
		return in.execBlock(x.Else, env, queries)
	case *ir.ForEach:
		cv, err := in.eval(x.Coll, env)
		if err != nil {
			return nil, err
		}
		items, err := iterable(cv)
		if err != nil {
			return nil, fmt.Errorf("foreach: %w", err)
		}
		for _, it := range items {
			env[x.Var] = copyValue(it)
			if ret, err := in.execBlock(x.Body, env, queries); err != nil || ret != nil {
				return ret, err
			}
		}
		return nil, nil
	case *ir.Scan:
		tbl, err := in.table(x.Table, env)
		if err != nil {
			return nil, err
		}
		for _, rec := range tbl.Records {
			env[x.Record] = rec
			if ret, err := in.execBlock(x.Body, env, queries); err != nil || ret != nil {
				return ret, err
			}
		}
		return nil, nil
	}
	return nil, fmt.Errorf("unknown statement %T", s)
}

// iterable snapshots a list or rows value for foreach.
func iterable(v Value) ([]Value, error) {
	switch x := v.(type) {
	case *List:
		return append([]Value(nil), x.Items...), nil
	case Rows:
		out := make([]Value, len(x))
		for i, r := range x {
			out[i] = r
		}
		return out, nil
	}
	return nil, fmt.Errorf("cannot iterate %s", TypeName(v))
}

func (in *Interp) record(name string, env map[string]Value) (*Record, error) {
	v, ok := env[name]
	if !ok {
		return nil, fmt.Errorf("record %q undefined", name)
	}
	r, ok := v.(*Record)
	if !ok {
		return nil, fmt.Errorf("%q is %s, not record", name, TypeName(v))
	}
	return r, nil
}

func (in *Interp) table(name string, env map[string]Value) (*Table, error) {
	v, ok := env[name]
	if !ok {
		return nil, fmt.Errorf("table %q undefined", name)
	}
	t, ok := v.(*Table)
	if !ok {
		return nil, fmt.Errorf("%q is %s, not table", name, TypeName(v))
	}
	return t, nil
}

// evalMulti evaluates an rhs that must yield n values (multi-assignment from
// a call, or a single value).
func (in *Interp) evalMulti(e ir.Expr, env map[string]Value, n int) ([]Value, error) {
	if c, ok := e.(*ir.Call); ok && n != 1 {
		return in.call(c, env, n)
	}
	v, err := in.eval(e, env)
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, fmt.Errorf("expression yields 1 value, want %d", n)
	}
	return []Value{v}, nil
}

func (in *Interp) evalAll(es []ir.Expr, env map[string]Value) ([]Value, error) {
	var out []Value
	for _, e := range es {
		v, err := in.eval(e, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (in *Interp) eval(e ir.Expr, env map[string]Value) (Value, error) {
	switch x := e.(type) {
	case *ir.Var:
		v, ok := env[x.Name]
		if !ok {
			return nil, fmt.Errorf("variable %q undefined", x.Name)
		}
		return v, nil
	case *ir.Lit:
		return x.V, nil
	case *ir.Un:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "!":
			b, err := truthy(v)
			if err != nil {
				return nil, err
			}
			return !b, nil
		case "-":
			i, ok := v.(int64)
			if !ok {
				return nil, fmt.Errorf("unary - on %s", TypeName(v))
			}
			return -i, nil
		}
		return nil, fmt.Errorf("unknown unary op %q", x.Op)
	case *ir.Bin:
		return in.evalBin(x, env)
	case *ir.Call:
		vals, err := in.call(x, env, -1)
		if err != nil {
			return nil, err
		}
		if len(vals) == 0 {
			return nil, nil
		}
		return vals[0], nil
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func (in *Interp) evalBin(x *ir.Bin, env map[string]Value) (Value, error) {
	// Short-circuit booleans.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.L, env)
		if err != nil {
			return nil, err
		}
		lb, err := truthy(l)
		if err != nil {
			return nil, err
		}
		if x.Op == "&&" && !lb {
			return false, nil
		}
		if x.Op == "||" && lb {
			return true, nil
		}
		r, err := in.eval(x.R, env)
		if err != nil {
			return nil, err
		}
		return truthyVal(r)
	}
	l, err := in.eval(x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.R, env)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "==":
		return Equal(l, r), nil
	case "!=":
		return !Equal(l, r), nil
	}
	// String concatenation.
	if x.Op == "+" {
		if ls, ok := l.(string); ok {
			rs, ok := r.(string)
			if !ok {
				return nil, fmt.Errorf("+ on string and %s", TypeName(r))
			}
			return ls + rs, nil
		}
	}
	li, lok := l.(int64)
	ri, rok := r.(int64)
	if !lok || !rok {
		// Allow string comparisons.
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				switch x.Op {
				case "<":
					return ls < rs, nil
				case "<=":
					return ls <= rs, nil
				case ">":
					return ls > rs, nil
				case ">=":
					return ls >= rs, nil
				}
			}
		}
		return nil, fmt.Errorf("%s on %s and %s", x.Op, TypeName(l), TypeName(r))
	}
	switch x.Op {
	case "+":
		return li + ri, nil
	case "-":
		return li - ri, nil
	case "*":
		return li * ri, nil
	case "/":
		if ri == 0 {
			return nil, fmt.Errorf("division by zero")
		}
		return li / ri, nil
	case "%":
		if ri == 0 {
			return nil, fmt.Errorf("modulo by zero")
		}
		return li % ri, nil
	case "<":
		return li < ri, nil
	case "<=":
		return li <= ri, nil
	case ">":
		return li > ri, nil
	case ">=":
		return li >= ri, nil
	}
	return nil, fmt.Errorf("unknown binary op %q", x.Op)
}

func truthyVal(v Value) (Value, error) {
	b, err := truthy(v)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func (in *Interp) call(c *ir.Call, env map[string]Value, want int) ([]Value, error) {
	fn, ok := in.Funcs[c.Fn]
	if !ok {
		return nil, fmt.Errorf("function %q not implemented", c.Fn)
	}
	if sig := in.Reg.Lookup(c.Fn); sig != nil && sig.NArgs >= 0 && sig.NArgs != len(c.Args) {
		return nil, fmt.Errorf("%s expects %d args, got %d", c.Fn, sig.NArgs, len(c.Args))
	}
	args, err := in.evalAll(c.Args, env)
	if err != nil {
		return nil, err
	}
	out, err := fn(args)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.Fn, err)
	}
	if want >= 0 && len(out) != want {
		return nil, fmt.Errorf("%s returned %d values, want %d", c.Fn, len(out), want)
	}
	return out, nil
}
