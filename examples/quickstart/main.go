// Quickstart: transform the paper's running example (Example 2) and run
// both versions against a deterministic query service, demonstrating that
// the rewrite preserves semantics while submitting queries asynchronously.
package main

import (
	"fmt"
	"log"

	"repro"
)

// The paper's Example 2: the result of each query is consumed by the very
// next statement, so naively making the call non-blocking gains nothing —
// loop fission (Rule A) is what exposes the asynchrony.
const src = `
proc partCounts(categoryList) {
  query q0 = "select count(partkey) from part where p_category = ?";
  sum = 0;
  while (!empty(categoryList)) {
    category = removeFirst(categoryList);
    partCount = execQuery(q0, category);
    sum = sum + partCount;
  }
  return sum;
}`

func main() {
	// 1. Transform: the loop is split into a submit loop and a fetch loop
	// (the paper's Example 3 shape).
	out, report, err := asyncq.Transform(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- transformed program ---")
	fmt.Println(out)
	fmt.Printf("sites: %d, transformed: %d\n\n", report.Opportunities(), report.Transformed())

	// 2. Run both versions against the same query service. The service
	// computes a deterministic result per (query, args), so the programs
	// must agree exactly.
	runner := func(req asyncq.Request) asyncq.Result {
		c, _ := req.Args[0].(int64)
		return asyncq.Ok(c*10 + 7) // pretend count per category
	}
	args := []asyncq.Value{listOf(3, 9, 12, 40, 77)}

	blocking := asyncq.NewPool(0, runner) // no pool: blocking execution
	defer blocking.Close()
	r1, err := asyncq.Run(src, args, blocking)
	if err != nil {
		log.Fatal(err)
	}

	pool := asyncq.NewPool(8, runner) // 8 worker threads
	defer pool.Close()
	r2, err := asyncq.Run(out, args, pool)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original   returned: %v\n", r1.Returned)
	fmt.Printf("transformed returned: %v\n", r2.Returned)
	if fmt.Sprint(r1.Returned) != fmt.Sprint(r2.Returned) {
		log.Fatal("results differ!")
	}
	fmt.Println("results identical — asynchronous submission preserved semantics")
}

func listOf(vals ...int64) asyncq.Value {
	items := make([]asyncq.Value, len(vals))
	for i, v := range vals {
		items[i] = v
	}
	return asyncq.List(items...)
}
