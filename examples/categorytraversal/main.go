// Category traversal (the paper's Experiment 3): a DFS over a category
// hierarchy that queries the item table once per visited node, run before
// and after transformation against the simulated SYS1 database with a cold
// buffer cache. Demonstrates the full pipeline — statement reordering
// followed by loop fission — and the cold-cache concurrency gains from the
// disk's elevator scheduling.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
)

func main() {
	app := apps.Category()
	orig := app.Proc()

	// Transform (needs the reorder algorithm first: the frontier update is
	// a loop-carried flow dependence into the loop predicate).
	trans, rep, err := core.Transform(orig, core.Options{
		Registry: app.Registry(), SplitNested: true, Readable: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- transformed program (readable form) ---")
	fmt.Println(ir.Print(trans))
	for _, s := range rep.Sites {
		fmt.Printf("site %q: converted %d/%d queries (reorder used: %v)\n\n",
			s.Loop, s.Converted, s.Queries, s.UsedReorder)
	}

	// Load the simulated database (SYS1 profile, scale 0.1: one simulated
	// microsecond = 100ns wall).
	fmt.Println("loading item table...")
	srv := server.New(server.SYS1(), 0.1)
	defer srv.Close()
	if err := app.Setup(srv, apps.SeededRand()); err != nil {
		log.Fatal(err)
	}

	const iterations = 60
	const threads = 10
	args := app.Args(iterations, apps.SeededRand())

	run := func(p *ir.Proc, workers int) (*interp.Result, time.Duration) {
		srv.ColdStart() // cold cache for both runs
		svc := exec.NewService(workers, srv.Exec)
		defer svc.Close()
		in := interp.New(app.Registry(), svc)
		app.Bind(in, apps.SeededRand())
		start := time.Now()
		res, err := in.Run(p, args)
		if err != nil {
			log.Fatal(err)
		}
		return res, time.Since(start)
	}

	fmt.Printf("running original (blocking) with cold cache, %d iterations...\n", iterations)
	r1, d1 := run(orig, 0)
	fmt.Printf("  time: %v, result: %s\n", d1, interp.Format(r1.Returned[0]))

	fmt.Printf("running transformed (%d threads) with cold cache...\n", threads)
	r2, d2 := run(trans, threads)
	fmt.Printf("  time: %v, result: %s\n", d2, interp.Format(r2.Returned[0]))

	if !interp.Equal(r1.Returned[0], r2.Returned[0]) {
		log.Fatal("results differ!")
	}
	fmt.Printf("speedup: %.1fx (results identical)\n", d1.Seconds()/d2.Seconds())

	st := srv.Stats()
	fmt.Printf("server: %d queries, buffer %d hits / %d misses, disk avg queue %.1f\n",
		st.Queries, st.BufferHits, st.BufferMiss, st.Disk.AvgQueue)
}
