// Web-service prefetching (the paper's Experiment 5): a client fetching
// per-director movie counts from a remote entity-graph service whose API
// supports neither joins nor set-oriented requests, so it must loop — and
// wide-area round-trip latency dominates. The transformation overlaps the
// HTTP-like requests; this example sweeps the thread count like Figure 15.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/server"
)

func main() {
	app := apps.WebServiceApp()
	orig := app.Proc()
	trans, _, err := core.Transform(orig, core.Options{
		Registry: app.Registry(), SplitNested: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(server.WebService(), 0.05)
	defer srv.Close()
	if err := app.Setup(srv, apps.SeededRand()); err != nil {
		log.Fatal(err)
	}
	srv.Warm()

	const iterations = 120
	args := app.Args(iterations, apps.SeededRand())

	run := func(p *ir.Proc, workers int) (time.Duration, interp.Value) {
		svc := exec.NewService(workers, srv.Exec)
		defer svc.Close()
		in := interp.New(app.Registry(), svc)
		start := time.Now()
		res, err := in.Run(p, args)
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start), res.Returned[0]
	}

	origTime, origVal := run(orig, 0)
	fmt.Printf("original (blocking), %d requests: %v (total movies: %s)\n",
		iterations, origTime, interp.Format(origVal))

	fmt.Println("transformed, varying threads (cf. paper Figure 15):")
	for _, t := range []int{1, 2, 5, 10, 15, 20, 25} {
		d, v := run(trans, t)
		if !interp.Equal(v, origVal) {
			log.Fatal("results differ!")
		}
		fmt.Printf("  %2d threads: %8v  (%.1fx)\n", t, d.Round(time.Millisecond),
			origTime.Seconds()/d.Seconds())
	}
}
