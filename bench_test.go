package asyncq

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure runs the corresponding experiment in quick mode (reduced
// sweeps, small latency scale) and reports original vs transformed times as
// custom metrics; `go run ./cmd/experiments` produces the full-size series
// recorded in EXPERIMENTS.md. Micro-benchmarks for the transformation
// machinery itself follow.

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/testsvc"
)

// benchFigure runs one figure per benchmark iteration and reports the
// last point's original/transformed times (simulated seconds ×1000) as
// metrics, so regressions in either path are visible.
func benchFigure(b *testing.B, f func(h *experiments.Harness) (*experiments.Figure, error)) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness()
		h.Quick = true
		h.Scale = 0.02
		fig, err := f(h)
		if err != nil {
			h.Close()
			b.Fatal(err)
		}
		if len(fig.Series) >= 2 {
			so := fig.Series[0].Points
			st := fig.Series[1].Points
			if len(so) > 0 && len(st) > 0 {
				b.ReportMetric(so[len(so)-1].Y*1000, "orig-ms")
				b.ReportMetric(st[len(st)-1].Y*1000, "trans-ms")
			}
		}
		h.Close()
	}
}

func BenchmarkFig08RubisIterations(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig08() })
}

func BenchmarkFig09RubisThreadsSYS1(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig09() })
}

func BenchmarkFig10RubisThreadsPG(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig10() })
}

func BenchmarkFig11RubbosIterations(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig11() })
}

func BenchmarkFig12CategoryIterations(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig12() })
}

func BenchmarkFig13CategoryThreads(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig13() })
}

func BenchmarkFig14FormsInserts(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig14() })
}

func BenchmarkFig15WebServiceThreads(b *testing.B) {
	benchFigure(b, func(h *experiments.Harness) (*experiments.Figure, error) { return h.Fig15() })
}

func BenchmarkTable1Applicability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if rows[0].Transformed != 9 || rows[1].Transformed != 6 {
			b.Fatalf("unexpected Table I: %+v", rows)
		}
	}
}

// --- Ablations (DESIGN.md §7) ---

// BenchmarkAblationNoReorder measures how much of Table I's applicability
// the reordering algorithm provides: transforming the corpus with reordering
// effectively disabled (every reorder-needing site fails).
func BenchmarkAblationReorderApplicability(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		withReorder, withoutReorder := 0, 0
		for _, c := range []*apps.CorpusApp{apps.AuctionCorpus(), apps.BulletinCorpus()} {
			for _, p := range c.Procs {
				rep := core.Analyze(p, core.Options{SplitNested: true})
				if rep.TransformedCount() > 0 {
					withReorder++
					needed := false
					for _, s := range rep.Sites {
						if s.UsedReorder {
							needed = true
						}
					}
					if !needed {
						withoutReorder++
					}
				}
			}
		}
		b.ReportMetric(float64(withReorder), "sites-with-reorder")
		b.ReportMetric(float64(withoutReorder), "sites-without-reorder")
	}
}

// BenchmarkAblationThreadPool isolates the round-trip-overlap gain from the
// concurrency gain: pool of 1 worker (overlap only) vs pool of 10.
func BenchmarkAblationThreadPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness()
		h.Quick = true
		h.Scale = 0.02
		app := apps.RUBiS()
		m1, err := h.Measure(app, server.SYS1(), 1, 400, true)
		if err != nil {
			b.Fatal(err)
		}
		m10, err := h.Measure(app, server.SYS1(), 10, 400, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m1.Transformed*1000, "trans-1thread-ms")
		b.ReportMetric(m10.Transformed*1000, "trans-10threads-ms")
		h.Close()
	}
}

// BenchmarkBatchedSubmission compares per-query asynchronous submission
// against coalesced (batched) submission on the cold-cache category
// traversal — the workload where batching amortizes both the network round
// trips and the buffer-pool faults. Reported metrics: simulated times for
// all three submission modes, batches issued, mean batch size, and the
// server round trips each mode paid.
func BenchmarkBatchedSubmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.NewHarness()
		h.Quick = true
		h.Scale = 0.02
		m, err := h.MeasureBatched(apps.Category(), server.SYS1(), 10, 100, false, 16)
		if err != nil {
			h.Close()
			b.Fatal(err)
		}
		b.ReportMetric(m.Sync*1000, "sync-ms")
		b.ReportMetric(m.Async*1000, "async-ms")
		b.ReportMetric(m.Batched*1000, "batched-ms")
		b.ReportMetric(float64(m.BatchesIssued), "batches")
		b.ReportMetric(m.AvgBatchSize, "avg-batch")
		b.ReportMetric(float64(m.NetRequestsAsync), "rtt-async")
		b.ReportMetric(float64(m.NetRequestsBatched), "rtt-batched")
		h.Close()
	}
}

// BenchmarkShardScale measures batched RUBiS throughput on 1/2/4/8-shard
// clusters (the shard-scale figure in miniature), cold and warm. Cold-cache
// throughput improves monotonically from 1 to 4 shards and beyond — each
// shard owns a quarter of the data on its own disks — while the warm
// (round-trip-bound) runs hold parity because shard-aware coalescing keeps
// the round-trip count equal to the single server's. Every measurement
// verifies the sharded results against the single-server batched path; each
// reported metric is the best of three runs (sub-10ms runs on an
// oversubscribed host are scheduler-noise-bound). Scale 1.0 keeps the
// simulated latencies sleep-dominated so per-shard parallelism is real.
func BenchmarkShardScale(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			h := experiments.NewHarness()
			h.Scale = 1.0
			defer h.Close()
			measure := func(iters int, warm bool) experiments.ShardMeasurement {
				best, err := experiments.BestOf(3,
					func(m experiments.ShardMeasurement) float64 { return m.Throughput },
					func() (experiments.ShardMeasurement, error) {
						return h.MeasureSharded(apps.RUBiS(), server.SYS1(), 50, iters, warm, 16, shards)
					})
				if err != nil {
					b.Fatal(err)
				}
				return best
			}
			for i := 0; i < b.N; i++ {
				cold := measure(1000, false)
				warm := measure(2000, true)
				b.ReportMetric(cold.Throughput, "cold-q/s")
				b.ReportMetric(cold.Speedup(), "cold-speedup")
				b.ReportMetric(warm.Throughput, "warm-q/s")
				b.ReportMetric(float64(cold.NetRequestsSharded), "cold-rtt")
			}
		})
	}
}

// BenchmarkShardScaleTraced is BenchmarkShardScale's warm 4-shard point with
// request tracing enabled: every submission opens a root span whose children
// cover queue wait, batch coalescing, per-shard fan-out and WAL commit, all
// recorded into live histograms. Comparing warm-q/s here against
// BenchmarkShardScale/shards=4 bounds the observability overhead; the budget
// is <5% (the record path is striped atomics with no allocation).
func BenchmarkShardScaleTraced(b *testing.B) {
	h := experiments.NewHarness()
	h.Scale = 1.0
	h.Obs = obs.NewTracer(obs.NewRegistry())
	// Always-on production posture: every request records its end-to-end
	// latency; one root in 64 carries the full per-stage subtree.
	h.Obs.SetChildSampling(64)
	defer h.Close()
	for i := 0; i < b.N; i++ {
		best, err := experiments.BestOf(3,
			func(m experiments.ShardMeasurement) float64 { return m.Throughput },
			func() (experiments.ShardMeasurement, error) {
				return h.MeasureSharded(apps.RUBiS(), server.SYS1(), 50, 2000, true, 16, 4)
			})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(best.Throughput, "warm-q/s")
	}
	if open := h.Obs.Open(); open != 0 {
		b.Fatalf("tracing leak: %d spans still open", open)
	}
}

// BenchmarkReplicaScale measures batched RUBiS read throughput on ONE hot
// shard fronted by 1/2/4 read replicas (the replica-scale figure in
// miniature): every query hits the same shard, and the replica group
// spreads whole read batches round-robin over the copies, so cold-cache
// throughput grows with the replica count — each replica faults its batches
// against its own disk. Every measurement verifies the replicated results
// against the single-server batched path; best of three runs per metric, as
// in BenchmarkShardScale. Scale 1.0 keeps the simulated latencies
// sleep-dominated so per-replica parallelism is real.
func BenchmarkReplicaScale(b *testing.B) {
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			h := experiments.NewHarness()
			h.Scale = 1.0
			defer h.Close()
			measure := func(iters int) experiments.ReplicaMeasurement {
				best, err := experiments.BestOf(3,
					func(m experiments.ReplicaMeasurement) float64 { return m.Throughput },
					func() (experiments.ReplicaMeasurement, error) {
						return h.MeasureReplicated(apps.RUBiS(), server.SYS1(), 50, iters, false, 16, 1, replicas)
					})
				if err != nil {
					b.Fatal(err)
				}
				return best
			}
			for i := 0; i < b.N; i++ {
				cold := measure(1000)
				b.ReportMetric(cold.Throughput, "cold-q/s")
				b.ReportMetric(cold.Speedup(), "cold-speedup")
				busy := 0
				for _, shardReads := range cold.ReplicaReads {
					for _, r := range shardReads {
						if r > 0 {
							busy++
						}
					}
				}
				b.ReportMetric(float64(busy), "replicas-serving")
			}
		})
	}
}

// BenchmarkServerHotPath measures the server's own execution loop — the
// real-CPU cost left after round trips and planning charges were amortized
// away — on a warm cache with simulated latencies disabled (Scale = 0), so
// time/op and allocs/op are the engine's, not the simulator's. Sub-benchmarks
// cover the batched index probe (aggregate and row-returning), the batched
// shared scan, and the single point query.
func BenchmarkServerHotPath(b *testing.B) {
	newSrv := func(b *testing.B) *server.Server {
		b.Helper()
		srv := server.New(server.SYS1(), 0)
		users := srv.Catalog().CreateTable("users", storage.NewSchema(
			storage.Column{Name: "id", Type: storage.TInt},
			storage.Column{Name: "name", Type: storage.TString},
			storage.Column{Name: "rating", Type: storage.TInt},
		))
		for i := int64(0); i < 8192; i++ {
			if _, err := users.Insert([]any{i, fmt.Sprintf("user%d", i), i % 32}); err != nil {
				b.Fatal(err)
			}
		}
		srv.FinishLoad()
		if err := srv.AddIndex("users", "id", true); err != nil {
			b.Fatal(err)
		}
		if err := srv.AddIndex("users", "rating", false); err != nil {
			b.Fatal(err)
		}
		srv.Warm()
		return srv
	}

	const batchSize = 16
	run := func(name, sql string, argOf func(i int) []any) {
		b.Run(name, func(b *testing.B) {
			srv := newSrv(b)
			defer srv.Close()
			argSets := make([][]any, batchSize)
			for i := range argSets {
				argSets[i] = argOf(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, errs := srv.ExecBatch(query.BatchReq("q", sql, argSets)).Pair()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
	run("batch-agg-index", "select count(id) from users where rating = ?",
		func(i int) []any { return []any{int64(i % 32)} })
	run("batch-rows-index", "select name, rating from users where id = ?",
		func(i int) []any { return []any{int64(i * 37 % 8192)} })
	run("batch-agg-scan", "select sum(rating) from users where name = ?",
		func(i int) []any { return []any{fmt.Sprintf("user%d", i)} })

	b.Run("exec-point", func(b *testing.B) {
		srv := newSrv(b)
		defer srv.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := srv.Exec(query.Req("q", "select name, rating from users where id = ?",
				[]any{int64(i % 8192)})).Pair(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro-benchmarks of the machinery ---

func BenchmarkTransformRUBiS(b *testing.B) {
	app := apps.RUBiS()
	proc := app.Proc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Transform(proc, core.Options{Registry: app.Registry(), SplitNested: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformCategoryWithReorder(b *testing.B) {
	app := apps.Category()
	proc := app.Proc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Transform(proc, core.Options{Registry: app.Registry(), SplitNested: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := apps.Category().Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := minilang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDDGBuild(b *testing.B) {
	proc := apps.Category().Proc()
	reg := apps.Category().Registry()
	var loop ir.Stmt
	for _, s := range proc.Body.Stmts {
		if _, ok := s.(*ir.While); ok {
			loop = s
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := dataflow.BuildLoop(loop, reg)
		if len(g.Edges) == 0 {
			b.Fatal("no edges")
		}
	}
}

const spinSrc = `
proc spin(n) {
  i = 0;
  s = 0;
  while (i < n) {
    s = s + i * 3 % 7;
    i = i + 1;
  }
  return s;
}`

// BenchmarkInterpLoop measures the production evaluator (slot-compiled
// path; the program is compiled once and cached by the Interp).
func BenchmarkInterpLoop(b *testing.B) {
	proc := minilang.MustParse(spinSrc)
	in := interp.New(ir.NewRegistry(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Run(proc, []interp.Value{int64(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpLoopTree measures the tree-walking reference evaluator on
// the same kernel, keeping the compiled path's speedup visible.
func BenchmarkInterpLoopTree(b *testing.B) {
	proc := minilang.MustParse(spinSrc)
	in := interp.New(ir.NewRegistry(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.RunTree(proc, []interp.Value{int64(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the one-time cost of slot compilation (paid
// once per program, then amortised by the caches in asyncq.Run, Interp.Run
// and the experiments harness).
func BenchmarkCompile(b *testing.B) {
	proc := apps.Category().Proc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := interp.Compile(proc); p == nil {
			b.Fatal("nil program")
		}
	}
}

func BenchmarkExecutorThroughput(b *testing.B) {
	e := exec.NewExecutor(8, testsvc.Runner())
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := e.Submit(query.Req("q", "select 1", []any{int64(i)}))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Fetch(); err != nil {
			b.Fatal(err)
		}
	}
}
