// Package asyncq automatically rewrites database application programs that
// issue blocking (synchronous) queries from loops into equivalent programs
// that submit the queries asynchronously and fetch the results later — the
// program transformations of Chavan, Guravannavar, Ramachandra and
// Sudarshan, "Program Transformations for Asynchronous Query Submission"
// (ICDE 2011).
//
// Programs are written in a small imperative mini-language (see package
// documentation in internal/minilang for the grammar); Transform returns the
// rewritten source. The transformation is driven by a statement-level data
// dependence graph and applies:
//
//   - Rule A, loop fission: the loop is split into a submit loop and a
//     fetch/consume loop connected by a keyed record table;
//   - Rule B, control-dependence conversion: conditionals around the query
//     become guarded statements so fission can cut through them;
//   - statement reordering (Rule C stubs + the reorder algorithm), which
//     removes loop-carried flow dependences crossing the split whenever the
//     query is not on a true-dependence cycle;
//   - nested-loop fission, splitting enclosing loops at the boundary the
//     inner fission leaves behind.
//
// The package also provides the asynchronous client runtime (worker pool +
// handles, the observer model) and an interpreter to execute both original
// and transformed programs against any QueryService.
//
// Batched submission — the sibling of asynchronous submission in the paper —
// rides the same transformed programs: NewBatchedPool returns a service
// whose submissions are coalesced into set-oriented batches (one round trip
// and one planning charge per batch, demultiplexed back onto the individual
// handles; see internal/batch). Transformed programs run unchanged on
// either service and produce identical results.
//
// Beyond one server, the internal/shard router partitions tables by a
// declared shard key across N independent backends: point statements route
// to the owning shard, everything else scatter-gathers with a deterministic
// merge, and batched submissions split into per-shard sub-batches that
// execute in parallel. Because the router exposes the same Runner and
// BatchRunner shapes as a single server, a transformed program moves from
// one server to an N-shard cluster by swapping the functions handed to
// NewPool or NewBatchedPool — and still produces identical results.
package asyncq

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/query"
)

// Options control the transformation.
type Options struct {
	// Readable applies the §V regrouping pass, folding guarded statements
	// back into if blocks. Default on in Transform.
	Readable bool
	// SplitNested enables nested-loop fission (§III-D).
	SplitNested bool
	// OnlyQueries limits transformation to the named prepared queries.
	OnlyQueries []string
	// Funcs declares extra application functions for dataflow analysis.
	Funcs []FuncSig
}

// FuncSig declares an application function's dataflow behaviour.
type FuncSig struct {
	Name string
	// NArgs is the arity (-1 variadic); NRet the number of results.
	NArgs, NRet int
	// MutatesArgs lists argument positions modified in place.
	MutatesArgs []int
	// ReadsDB / WritesDB / WritesIO declare external effects.
	ReadsDB, WritesDB, WritesIO bool
	// Barrier marks calls that can never be reordered or split across
	// (e.g. recursive methods that themselves run queries).
	Barrier bool
}

// Site reports the outcome for one loop containing query executions.
type Site struct {
	Loop        string
	Queries     int
	Converted   int
	UsedReorder bool
	UsedRuleB   bool
	Reasons     []string
}

// Report summarizes a transformation (the applicability analysis of the
// paper's Table I).
type Report struct {
	Proc  string
	Sites []Site
}

// Opportunities counts loops containing query executions.
func (r *Report) Opportunities() int { return len(r.Sites) }

// Transformed counts exploited loops.
func (r *Report) Transformed() int {
	n := 0
	for _, s := range r.Sites {
		if s.Converted > 0 {
			n++
		}
	}
	return n
}

// Transform rewrites src for asynchronous query submission with default
// options (readable output, nested splitting) and returns the transformed
// source plus the per-site report.
func Transform(src string) (string, *Report, error) {
	return TransformWithOptions(src, Options{Readable: true, SplitNested: true})
}

// TransformWithOptions is Transform with explicit options.
func TransformWithOptions(src string, opt Options) (string, *Report, error) {
	proc, err := minilang.Parse(src)
	if err != nil {
		return "", nil, err
	}
	reg := buildRegistry(opt.Funcs)
	out, rep, err := core.Transform(proc, core.Options{
		Registry:    reg,
		Readable:    opt.Readable,
		SplitNested: opt.SplitNested,
		OnlyQueries: opt.OnlyQueries,
	})
	if err != nil {
		return "", nil, err
	}
	return ir.Print(out), convertReport(rep), nil
}

// Analyze reports applicability without returning rewritten code.
func Analyze(src string, opt Options) (*Report, error) {
	proc, err := minilang.Parse(src)
	if err != nil {
		return nil, err
	}
	rep := core.Analyze(proc, core.Options{
		Registry:    buildRegistry(opt.Funcs),
		SplitNested: true, // analysis always considers the nested-loop rule
		OnlyQueries: opt.OnlyQueries,
	})
	return convertReport(rep), nil
}

// DDG returns the Graphviz dot rendering of the data dependence graph of
// the n-th loop (0-based) in src, including external and loop-carried
// dependences — the paper's Figure 1 view.
func DDG(src string, loopIndex int) (string, error) {
	proc, err := minilang.Parse(src)
	if err != nil {
		return "", err
	}
	reg := ir.NewRegistry()
	n := -1
	var out string
	ir.WalkStmts(proc.Body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.While, *ir.ForEach, *ir.Scan:
			n++
			if n == loopIndex && out == "" {
				out = dataflow.BuildLoop(s, reg).Dot(fmt.Sprintf("%s_loop%d", proc.Name, n))
			}
		}
	})
	if out == "" {
		return "", fmt.Errorf("asyncq: no loop %d in %s", loopIndex, proc.Name)
	}
	return out, nil
}

func buildRegistry(funcs []FuncSig) *ir.Registry {
	reg := ir.NewRegistry()
	for _, f := range funcs {
		var ext ir.External
		if f.ReadsDB {
			ext |= ir.ExtReadsDB
		}
		if f.WritesDB {
			ext |= ir.ExtWritesDB
		}
		if f.WritesIO {
			ext |= ir.ExtIO
		}
		reg.Register(&ir.FuncSig{
			Name: f.Name, NArgs: f.NArgs, NRet: f.NRet,
			MutatesArgs: f.MutatesArgs, External: ext, Barrier: f.Barrier,
		})
	}
	return reg
}

func convertReport(rep *core.Report) *Report {
	out := &Report{Proc: rep.Proc}
	for _, s := range rep.Sites {
		out.Sites = append(out.Sites, Site{
			Loop: s.Loop, Queries: s.Queries, Converted: s.Converted,
			UsedReorder: s.UsedReorder, UsedRuleB: s.UsedFlatten,
			Reasons: s.Reasons,
		})
	}
	return out
}

// --- Runtime ---

// Value is a runtime value of the mini-language (int64, string, bool, nil,
// lists, rows).
type Value = interp.Value

// Handle is a pending asynchronous query (observer model): Fetch blocks
// until the result is ready.
type Handle = interp.Handle

// QueryService executes queries for programs run with Run: Exec is the
// blocking path, Submit the asynchronous one.
type QueryService = interp.QueryService

// Request is one query execution request: statement name, SQL, bindings,
// plus optional trace span, session consistency tokens and deadline. Every
// layer of the runtime — executor, coalescer, server, shard router, replica
// group, network front door — speaks this one shape.
type Request = query.Request

// Result is a Request's outcome.
type Result = query.Result

// BatchRequest is the set-oriented Request: one prepared statement, many
// parameter bindings, one round trip.
type BatchRequest = query.BatchRequest

// BatchResult holds one value and one error per binding, in binding order.
type BatchResult = query.BatchResult

// Ok wraps a successful result value.
func Ok(v any) Result { return query.Ok(v) }

// Fail wraps a failed execution.
func Fail(err error) Result { return query.Fail(err) }

// Runner executes a single query; used to build services and pools.
type Runner = exec.Runner

// NewService builds a QueryService from a Runner with a worker pool of the
// given size (0 = blocking only). Close it to drain the pool.
type Service = exec.Service

// NewPool returns a QueryService backed by `workers` concurrent executors of
// run — the runtime the transformed programs use.
func NewPool(workers int, run Runner) *Service {
	return exec.NewService(workers, run)
}

// BatchRunner executes one prepared statement against a set of parameter
// bindings in a single round trip (the set-oriented sibling of Runner).
type BatchRunner = exec.BatchRunner

// NewBatchedPool returns a QueryService like NewPool whose submissions are
// additionally coalesced into set-oriented batches of up to maxBatch
// requests per prepared statement, executed through runBatch; a partial
// batch flushes after the linger window (0 = default). maxBatch 0 uses the
// default batch size, any other maxBatch below 2 turns batching off, and
// workers 0 degrades to synchronous execution exactly like NewPool. Transformed programs need
// no changes and produce results identical to the per-query pool.
func NewBatchedPool(workers int, run Runner, runBatch BatchRunner, maxBatch int, linger time.Duration) *Service {
	return batch.NewService(workers, run, runBatch, batch.Options{MaxBatch: maxBatch, Linger: linger})
}

// List builds a mini-language list value for program arguments.
func List(items ...Value) Value { return interp.NewList(items...) }

// Row builds a mini-language row value (query-result record).
func Row(fields map[string]Value) Value {
	r := interp.Row{}
	for k, v := range fields {
		r[k] = v
	}
	return r
}

// Rows builds a list-of-rows value.
func Rows(rows ...interp.Row) Value { return interp.Rows(rows) }

// FormatValue renders a value deterministically.
func FormatValue(v Value) string { return interp.Format(v) }

// RunResult is the outcome of running a program.
type RunResult struct {
	Returned []Value
	Output   string
}

// Run executes a mini-language program against svc with the given
// positional arguments. Both original and transformed programs run through
// the same entry point; transformed programs need a service whose Submit is
// backed by a pool (NewPool). Programs are parsed and slot-compiled once
// per distinct source and cached, so callers that run the same program
// millions of times pay compilation on the first call only.
func Run(src string, args []Value, svc QueryService, funcs ...FuncSig) (*RunResult, error) {
	prog, err := compiledProgram(src)
	if err != nil {
		return nil, err
	}
	in := interp.New(buildRegistry(funcs), svc)
	res, err := in.RunProgram(prog, args)
	if err != nil {
		return nil, err
	}
	return &RunResult{Returned: res.Returned, Output: res.Output}, nil
}

// progCache caches compiled programs by source text. The cache is bounded:
// when it reaches progCacheMax entries it is reset wholesale, which keeps
// the common case (a handful of programs run repeatedly) fast without
// letting adversarial call patterns grow memory without bound.
const progCacheMax = 256

var (
	progMu    sync.Mutex
	progCache = make(map[string]*interp.Program)
)

func compiledProgram(src string) (*interp.Program, error) {
	progMu.Lock()
	prog, ok := progCache[src]
	progMu.Unlock()
	if ok {
		return prog, nil
	}
	proc, err := minilang.Parse(src)
	if err != nil {
		return nil, err
	}
	prog = interp.Compile(proc)
	progMu.Lock()
	if len(progCache) >= progCacheMax {
		progCache = make(map[string]*interp.Program)
	}
	progCache[src] = prog
	progMu.Unlock()
	return prog, nil
}
