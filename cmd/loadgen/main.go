// Command loadgen drives a running `asyncq -serve` front door over the
// wire protocol and reports the latency distribution, throughput, and the
// admission-control accounting (sheds, deadline misses, hung requests).
//
// Usage:
//
//	asyncq -serve -addr 127.0.0.1:7474 &
//	loadgen -addr 127.0.0.1:7474 -conns 64 -dur 5s                  # closed loop
//	loadgen -addr 127.0.0.1:7474 -conns 256 -rate 20000 -dur 5s \
//	        -deadline 50ms -json LOAD_8.json                         # open loop
//
// Closed loop (-rate 0) self-throttles to the server's capacity and
// measures best-case service latency. Open loop (-rate N) keeps offering
// load regardless of completions — the mode that exposes overload: with
// the offered rate above the admission budget, the report should show
// bounded p999 on admitted requests, a nonzero shed count, and zero hung
// connections. -json writes the report as one JSON object (the LOAD_<n>
// CI artifact; validate with `benchjson -load`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/net"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7474", "front door address")
	conns := flag.Int("conns", 32, "concurrent connections")
	rate := flag.Float64("rate", 0, "open-loop offered load, requests/sec (0 = closed loop)")
	dur := flag.Duration("dur", 5*time.Second, "run duration")
	deadline := flag.Duration("deadline", 0, "per-request deadline (0 = none)")
	op := flag.String("op", "select", "workload: select (point reads) or insert (unique-key writes)")
	rows := flag.Int("rows", 10000, "key range of the server's load table (must match -serve -rows)")
	seed := flag.Int64("seed", 1, "argument-generator seed")
	retries := flag.Int("retries", 0, "max attempts per request (0 or 1 = no retries, the historical client)")
	backoff := flag.Duration("backoff", time.Millisecond, "base retry backoff (doubles per retry)")
	budget := flag.Int64("retry-budget", 0, "lifetime retry cap per connection (0 = unlimited)")
	jsonOut := flag.String("json", "", "also write the report as JSON to `file`")
	flag.Parse()

	opts := net.LoadOptions{
		Addr:     *addr,
		Conns:    *conns,
		Rate:     *rate,
		Duration: *dur,
		Deadline: *deadline,
		Seed:     *seed,
		Client: net.ClientOptions{
			Retry: net.RetryPolicy{
				MaxAttempts: *retries,
				BaseBackoff: *backoff,
				Jitter:      0.5,
				Budget:      *budget,
			},
		},
	}
	switch *op {
	case "select":
		opts.Name = "point"
		opts.SQL = "select val from load where id = ?"
		n := int64(*rows)
		opts.ArgFn = func(r *rand.Rand) []any { return []any{r.Int63n(n) + 1} }
	case "insert":
		opts.Name = "ins"
		opts.SQL = "insert into load values (?, ?)"
		var next atomic.Int64
		next.Store(int64(*rows))
		opts.ArgFn = func(r *rand.Rand) []any {
			id := next.Add(1)
			return []any{id, fmt.Sprintf("w%d", id)}
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -op %q (select|insert)\n", *op)
		os.Exit(2)
	}

	rep, err := net.RunLoad(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	fmt.Printf("loadgen: %s loop, %d conns", rep.Mode, rep.Conns)
	if rep.Mode == "open" {
		fmt.Printf(", offered %.0f req/s", rep.Rate)
	}
	fmt.Printf(", %s\n", dur)
	fmt.Printf("  sent %d  completed %d (%.0f req/s)  shed %d (%.1f%%)  deadlined %d  failed %d  hung %d\n",
		rep.Sent, rep.Completed, rep.ThroughputRPS,
		rep.Shed, 100*rep.ShedRate(), rep.Deadlined, rep.Failed, rep.Hung)
	fmt.Printf("  latency ms: p50 %.2f  p99 %.2f  p999 %.2f  mean %.2f  max %.2f\n",
		rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.MeanMs, rep.MaxMs)
	fmt.Printf("  resilience: retries %d  reconnects %d", rep.Retries, rep.Reconnects)
	if rep.RetryBudget > 0 {
		fmt.Printf(" (budget %d/conn)", rep.RetryBudget)
	}
	fmt.Println()

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if rep.Hung > 0 || rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d hung, %d failed requests\n", rep.Hung, rep.Failed)
		os.Exit(1)
	}
}
