// Command benchjson converts `go test -bench` text output into the
// BENCH_<n>.json artifact format and back, so each PR's bench-smoke run
// leaves a structured, benchstat-comparable trace.
//
// Usage:
//
//	go test -run XXX -bench . ./... | benchjson -o BENCH_6.json
//	benchjson -text BENCH_6.json > new.txt    # back to benchstat input
//
// Values are kept verbatim (no float round-tripping), so
// `benchjson -text old.json` / `benchjson -text new.json` feed benchstat
// exactly what the original runs printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "write output to `file` (default stdout)")
	text := flag.Bool("text", false, "input is BENCH_<n>.json; emit benchstat text instead")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o file] [-text] [input]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *text {
		f, err := benchfmt.Decode(in)
		if err != nil {
			fatal(err)
		}
		if err := f.Text(w); err != nil {
			fatal(err)
		}
		return
	}
	f, err := benchfmt.Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}
	if err := f.Encode(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
