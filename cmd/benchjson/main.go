// Command benchjson converts `go test -bench` text output into the
// BENCH_<n>.json artifact format and back, so each PR's bench-smoke run
// leaves a structured, benchstat-comparable trace.
//
// Usage:
//
//	go test -run XXX -bench . ./... | benchjson -o BENCH_6.json
//	benchjson -text BENCH_6.json > new.txt    # back to benchstat input
//	benchjson -load LOAD_8.json               # validate a loadgen report
//	benchjson -reshard RESHARD_10.json        # validate a reshard timeline
//
// Values are kept verbatim (no float round-tripping), so
// `benchjson -text old.json` / `benchjson -text new.json` feed benchstat
// exactly what the original runs printed.
//
// -load validates a cmd/loadgen LOAD_<n>.json report instead: the run must
// have sent requests, every sent request must be accounted for (completed,
// shed, deadlined, failed or hung), no request may be hung or failed, and
// the latency percentiles must be ordered. CI gates the loadgen-smoke
// artifact on this check.
//
// -reshard validates a cmd/experiments -fig reshard RESHARD_<n>.json
// artifact instead: the figure array must carry the Reshard timeline,
// every throughput window must have made progress, and the range-map
// generation series must show the flip landing. CI gates the
// reshard-smoke artifact on this check.
//
// A numbered artifact name (-o BENCH_<n>.json, TAIL_<n>.json, LOAD_<n>.json
// or RESHARD_<n>.json) is validated against the repository's CHANGES.md: n
// must equal the number of "PR " entries, so an artifact can never silently
// claim another PR's slot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/experiments"
	"repro/internal/net"
)

// artifactRe matches the numbered per-PR artifact names CI emits.
var artifactRe = regexp.MustCompile(`^(BENCH|TAIL|LOAD|RESHARD)_(\d+)\.json$`)

// prCount counts the "PR " entries in the CHANGES.md found at dir or the
// nearest ancestor. It returns -1 when no CHANGES.md exists (benchjson also
// runs outside the repo; the artifact check is then skipped).
func prCount(dir string) int {
	for {
		if data, err := os.ReadFile(filepath.Join(dir, "CHANGES.md")); err == nil {
			n := 0
			for _, line := range strings.Split(string(data), "\n") {
				if strings.HasPrefix(line, "PR ") {
					n++
				}
			}
			return n
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return -1
		}
		dir = parent
	}
}

// validateArtifactName rejects a BENCH_<n>/TAIL_<n> output name whose number
// disagrees with the PR count in CHANGES.md.
func validateArtifactName(out, dir string) error {
	m := artifactRe.FindStringSubmatch(filepath.Base(out))
	if m == nil {
		return nil
	}
	want := prCount(dir)
	if want < 0 {
		return nil
	}
	n, err := strconv.Atoi(m[2])
	if err != nil || n != want {
		return fmt.Errorf("%s: artifact number %s does not match CHANGES.md, which records %d PR entries; name it %s_%d.json",
			filepath.Base(out), m[2], want, m[1], want)
	}
	return nil
}

// validateLoadReport checks the invariants a healthy loadgen run reports:
// work was sent, the per-outcome counters add up, nothing hung or failed,
// and the percentiles are ordered. It is the acceptance gate CI applies to
// the LOAD_<n>.json artifact.
func validateLoadReport(rep net.LoadReport) error {
	if rep.Sent <= 0 {
		return fmt.Errorf("load report: no requests sent")
	}
	if sum := rep.Completed + rep.Shed + rep.Deadlined + rep.Failed + rep.Hung; sum != rep.Sent {
		return fmt.Errorf("load report: outcomes (%d completed + %d shed + %d deadlined + %d failed + %d hung = %d) do not account for %d sent",
			rep.Completed, rep.Shed, rep.Deadlined, rep.Failed, rep.Hung, sum, rep.Sent)
	}
	if rep.Hung > 0 {
		return fmt.Errorf("load report: %d hung requests (never answered)", rep.Hung)
	}
	if rep.Failed > 0 {
		return fmt.Errorf("load report: %d failed requests", rep.Failed)
	}
	if rep.Completed > 0 {
		if rep.P50Ms <= 0 {
			return fmt.Errorf("load report: completed %d requests but p50 is %v ms", rep.Completed, rep.P50Ms)
		}
		if rep.P50Ms > rep.P99Ms || rep.P99Ms > rep.P999Ms || rep.P999Ms > rep.MaxMs {
			return fmt.Errorf("load report: percentiles out of order: p50 %v > p99 %v > p999 %v > max %v (ms)",
				rep.P50Ms, rep.P99Ms, rep.P999Ms, rep.MaxMs)
		}
	}
	if rep.Retries < 0 || rep.Reconnects < 0 || rep.Hedges < 0 || rep.BreakerTrips < 0 {
		return fmt.Errorf("load report: negative resilience counters: retries %d reconnects %d hedges %d trips %d",
			rep.Retries, rep.Reconnects, rep.Hedges, rep.BreakerTrips)
	}
	if rep.RetryBudget > 0 && rep.Retries > rep.RetryBudget*int64(rep.Conns) {
		return fmt.Errorf("load report: %d retries exceed the budget (%d per connection × %d conns)",
			rep.Retries, rep.RetryBudget, rep.Conns)
	}
	return nil
}

// validateReshardFigures checks the invariants of the reshard timeline
// artifact: the Reshard figure must be present with aligned throughput and
// generation series, every window must have made progress, and the
// generation must end past where it started (the flip landed).
func validateReshardFigures(figs []*experiments.Figure) error {
	for _, f := range figs {
		if f == nil || f.ID != "Reshard" {
			continue
		}
		var thr, gen *experiments.Series
		for i := range f.Series {
			switch f.Series[i].Label {
			case "throughput req/s":
				thr = &f.Series[i]
			case "generation":
				gen = &f.Series[i]
			}
		}
		if thr == nil || gen == nil {
			return fmt.Errorf("reshard figure: missing throughput or generation series")
		}
		if len(thr.Points) == 0 || len(thr.Points) != len(gen.Points) {
			return fmt.Errorf("reshard figure: %d throughput points vs %d generation points",
				len(thr.Points), len(gen.Points))
		}
		for i, p := range thr.Points {
			if p.Y <= 0 {
				return fmt.Errorf("reshard figure: window %d served nothing", i)
			}
		}
		if first, last := gen.Points[0].Y, gen.Points[len(gen.Points)-1].Y; last <= first {
			return fmt.Errorf("reshard figure: generation never advanced (%v -> %v): no split landed", first, last)
		}
		return nil
	}
	return fmt.Errorf("reshard artifact: no Reshard figure in input")
}

func main() {
	out := flag.String("o", "", "write output to `file` (default stdout)")
	text := flag.Bool("text", false, "input is BENCH_<n>.json; emit benchstat text instead")
	load := flag.Bool("load", false, "input is LOAD_<n>.json (a cmd/loadgen report); validate it")
	reshard := flag.Bool("reshard", false, "input is RESHARD_<n>.json (a cmd/experiments -fig reshard artifact); validate it")
	flag.Parse()

	if *out != "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		if err := validateArtifactName(*out, wd); err != nil {
			fatal(err)
		}
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o file] [-text] [input]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *reshard {
		var figs []*experiments.Figure
		if err := json.NewDecoder(in).Decode(&figs); err != nil {
			fatal(fmt.Errorf("reshard artifact: %w", err))
		}
		if err := validateReshardFigures(figs); err != nil {
			fatal(err)
		}
		for _, f := range figs {
			if f != nil && f.ID == "Reshard" {
				fmt.Fprintf(w, "ok: reshard timeline, %d windows\n", len(f.Series[0].Points))
			}
		}
		return
	}

	if *load {
		var rep net.LoadReport
		if err := json.NewDecoder(in).Decode(&rep); err != nil {
			fatal(fmt.Errorf("load report: %w", err))
		}
		if err := validateLoadReport(rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "ok: %s loop, sent %d, completed %d, shed %d, deadlined %d, p999 %.2fms\n",
			rep.Mode, rep.Sent, rep.Completed, rep.Shed, rep.Deadlined, rep.P999Ms)
		return
	}

	if *text {
		f, err := benchfmt.Decode(in)
		if err != nil {
			fatal(err)
		}
		if err := f.Text(w); err != nil {
			fatal(err)
		}
		return
	}
	f, err := benchfmt.Parse(in)
	if err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}
	if err := f.Encode(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
