package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/net"
)

func TestValidateArtifactName(t *testing.T) {
	dir := t.TempDir()
	changes := "PR 1: one\nPR 2: two\nPR 3: three\n"
	if err := os.WriteFile(filepath.Join(dir, "CHANGES.md"), []byte(changes), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		out, dir string
		wantErr  string
	}{
		{"BENCH_3.json", dir, ""},
		{"TAIL_3.json", dir, ""},
		{"LOAD_3.json", dir, ""},
		{"BENCH_3.json", sub, ""}, // CHANGES.md found via ancestor walk
		{"/elsewhere/BENCH_3.json", dir, ""},
		{"bench-smoke.txt", dir, ""},       // unnumbered names are not checked
		{"BENCH_2.json", dir, "records 3"}, // stale number
		{"TAIL_9.json", dir, "TAIL_3.json"},
		{"LOAD_7.json", dir, "LOAD_3.json"},
	}
	for _, c := range cases {
		err := validateArtifactName(c.out, c.dir)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateArtifactName(%q): unexpected error %v", c.out, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateArtifactName(%q) = %v, want error containing %q", c.out, err, c.wantErr)
		}
	}

	// No CHANGES.md anywhere up the tree: validation is skipped. /proc is
	// the most filesystem-root-adjacent writable-free place to anchor.
	if err := validateArtifactName("BENCH_99.json", string(os.PathSeparator)); err != nil {
		t.Errorf("no CHANGES.md: want skip, got %v", err)
	}
}

func TestValidateLoadReport(t *testing.T) {
	healthy := net.LoadReport{
		Mode: "open", Conns: 64, Rate: 20000, Duration: 3,
		Sent: 1000, Completed: 600, Shed: 390, Deadlined: 10,
		ThroughputRPS: 200,
		P50Ms:         0.5, P99Ms: 2.0, P999Ms: 4.0, MeanMs: 0.6, MaxMs: 5.0,
	}
	if err := validateLoadReport(healthy); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}

	// All-shed is still valid (no completions, so no percentile check).
	allShed := net.LoadReport{Mode: "open", Sent: 100, Shed: 100}
	if err := validateLoadReport(allShed); err != nil {
		t.Fatalf("all-shed report rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*net.LoadReport)
		wantErr string
	}{
		{"empty run", func(r *net.LoadReport) { r.Sent = 0 }, "no requests sent"},
		{"unaccounted outcomes", func(r *net.LoadReport) { r.Shed = 0 }, "do not account"},
		{"hung requests", func(r *net.LoadReport) { r.Shed -= 2; r.Hung = 2 }, "hung"},
		{"failed requests", func(r *net.LoadReport) { r.Shed--; r.Failed = 1 }, "failed"},
		{"zero p50 with completions", func(r *net.LoadReport) { r.P50Ms = 0 }, "p50"},
		{"inverted percentiles", func(r *net.LoadReport) { r.P99Ms = 9 }, "out of order"},
	}
	for _, c := range cases {
		rep := healthy
		c.mutate(&rep)
		err := validateLoadReport(rep)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.wantErr)
		}
	}
}
