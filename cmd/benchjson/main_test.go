package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateArtifactName(t *testing.T) {
	dir := t.TempDir()
	changes := "PR 1: one\nPR 2: two\nPR 3: three\n"
	if err := os.WriteFile(filepath.Join(dir, "CHANGES.md"), []byte(changes), 0o644); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		out, dir string
		wantErr  string
	}{
		{"BENCH_3.json", dir, ""},
		{"TAIL_3.json", dir, ""},
		{"BENCH_3.json", sub, ""}, // CHANGES.md found via ancestor walk
		{"/elsewhere/BENCH_3.json", dir, ""},
		{"bench-smoke.txt", dir, ""},       // unnumbered names are not checked
		{"BENCH_2.json", dir, "records 3"}, // stale number
		{"TAIL_9.json", dir, "TAIL_3.json"},
	}
	for _, c := range cases {
		err := validateArtifactName(c.out, c.dir)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("validateArtifactName(%q): unexpected error %v", c.out, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("validateArtifactName(%q) = %v, want error containing %q", c.out, err, c.wantErr)
		}
	}

	// No CHANGES.md anywhere up the tree: validation is skipped. /proc is
	// the most filesystem-root-adjacent writable-free place to anchor.
	if err := validateArtifactName("BENCH_99.json", string(os.PathSeparator)); err != nil {
		t.Errorf("no CHANGES.md: want skip, got %v", err)
	}
}
