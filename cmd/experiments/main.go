// Command experiments regenerates the paper's evaluation artifacts
// (Figures 8–15 and Table I) on the simulated database substrate.
//
// Usage:
//
//	experiments [-scale 0.2] [-quick] [-seed N] [-durability off|group|strict]
//	            [-fig 8|..|15|batch-category|batch-rubis|shard-scale|replica-scale|durability|tail-latency|frontdoor|chaos|reshard|all]
//	            [-figjson out.json] [-table1] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no selection flags, everything runs. Times are reported in simulated
// seconds (wall time divided by -scale), so results are comparable across
// scale settings. -seed (or the ASYNCQ_SEED environment variable) offsets
// the per-run workload argument generator so a reported anomaly reproduces
// deterministically; 0 keeps the historical fixed seeding. The profile
// flags write pprof CPU/heap profiles covering the selected experiments, so
// perf work can attach evidence without ad-hoc patches: go tool pprof
// cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/apps"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	scale := flag.Float64("scale", 0.2, "wall-clock scale for simulated latencies (1.0 = full)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	fig := flag.String("fig", "", "figure to run: 8..15, batch-category, batch-rubis, shard-scale, replica-scale, durability, tail-latency, frontdoor, chaos, reshard or 'all' (default: all)")
	figjson := flag.String("figjson", "", "also write the selected figures as a JSON array to `file` (CI artifacts)")
	table1 := flag.Bool("table1", false, "run only Table I")
	seed := flag.Int64("seed", 0, "workload seed (0: ASYNCQ_SEED env, else the historical fixed seeding)")
	durability := flag.String("durability", "", "restrict the durability figure's fsync-policy sweep to one WAL mode (off|group|strict; empty = all)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}()
	}

	h := experiments.NewHarness()
	h.Scale = *scale
	h.Quick = *quick
	h.Seed = apps.SeedFromEnv(*seed)
	h.Durability = *durability
	if h.Seed != 0 {
		// Logged up front so a failing run's seed is always recoverable.
		fmt.Fprintf(os.Stderr, "experiments: workload seed %d (rerun with -seed %d)\n", h.Seed, h.Seed)
	}
	defer h.Close()

	if *table1 {
		fmt.Print(experiments.RenderTable1(experiments.Table1()))
		return 0
	}

	var rendered []*experiments.Figure
	run := func(name string, f func() (*experiments.Figure, error)) bool {
		figOut, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			return false
		}
		fmt.Println(experiments.Render(figOut))
		rendered = append(rendered, figOut)
		return true
	}
	writeJSON := func() bool {
		if *figjson == "" {
			return true
		}
		data, err := json.MarshalIndent(rendered, "", "  ")
		if err == nil {
			err = os.WriteFile(*figjson, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -figjson: %v\n", err)
			return false
		}
		return true
	}

	figs := map[string]func() (*experiments.Figure, error){
		"8": h.Fig08, "9": h.Fig09, "10": h.Fig10, "11": h.Fig11,
		"12": h.Fig12, "13": h.Fig13, "14": h.Fig14, "15": h.Fig15,
		"batch-category": h.FigBatchCategory, "batch-rubis": h.FigBatchRUBiS,
		"shard-scale": h.FigShardScale, "replica-scale": h.FigReplicaScale,
		"durability": h.FigDurability, "tail-latency": h.FigTailLatency,
		"frontdoor": h.FigFrontdoor, "chaos": h.FigChaos,
		"reshard": h.FigReshard,
	}
	label := func(id string) string {
		if len(id) <= 2 { // numeric paper figures keep their "Fig N" labels
			return "Fig " + id
		}
		return id
	}
	switch *fig {
	case "", "all":
		for _, id := range []string{"8", "9", "10", "11", "12", "13", "14", "15",
			"batch-category", "batch-rubis", "shard-scale", "replica-scale",
			"durability", "tail-latency", "frontdoor", "chaos", "reshard"} {
			if !run(label(id), figs[id]) {
				return 1
			}
		}
		fmt.Print(experiments.RenderTable1(experiments.Table1()))
	default:
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
			return 2
		}
		if !run(label(*fig), f) {
			return 1
		}
	}
	if !writeJSON() {
		return 1
	}
	return 0
}
