// Command experiments regenerates the paper's evaluation artifacts
// (Figures 8–15 and Table I) on the simulated database substrate.
//
// Usage:
//
//	experiments [-scale 0.2] [-quick] [-fig 8|..|15|batch-category|batch-rubis|shard-scale|all] [-table1]
//
// With no selection flags, everything runs. Times are reported in simulated
// seconds (wall time divided by -scale), so results are comparable across
// scale settings.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.2, "wall-clock scale for simulated latencies (1.0 = full)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	fig := flag.String("fig", "", "figure to run: 8..15, batch-category, batch-rubis, shard-scale or 'all' (default: all)")
	table1 := flag.Bool("table1", false, "run only Table I")
	flag.Parse()

	h := experiments.NewHarness()
	h.Scale = *scale
	h.Quick = *quick
	defer h.Close()

	if *table1 {
		fmt.Print(experiments.RenderTable1(experiments.Table1()))
		return
	}

	run := func(name string, f func() (*experiments.Figure, error)) {
		figOut, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(experiments.Render(figOut))
	}

	figs := map[string]func() (*experiments.Figure, error){
		"8": h.Fig08, "9": h.Fig09, "10": h.Fig10, "11": h.Fig11,
		"12": h.Fig12, "13": h.Fig13, "14": h.Fig14, "15": h.Fig15,
		"batch-category": h.FigBatchCategory, "batch-rubis": h.FigBatchRUBiS,
		"shard-scale": h.FigShardScale,
	}
	label := func(id string) string {
		if len(id) <= 2 { // numeric paper figures keep their "Fig N" labels
			return "Fig " + id
		}
		return id
	}
	switch *fig {
	case "", "all":
		for _, id := range []string{"8", "9", "10", "11", "12", "13", "14", "15",
			"batch-category", "batch-rubis", "shard-scale"} {
			run(label(id), figs[id])
		}
		fmt.Print(experiments.RenderTable1(experiments.Table1()))
	default:
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", *fig)
			os.Exit(2)
		}
		run(label(*fig), f)
	}
}
