// Command asyncq is the transformation tool: it parses a mini-language
// program and rewrites it for asynchronous query submission, printing the
// transformed source, the data dependence graph, or the applicability
// analysis.
//
// Usage:
//
//	asyncq [-analyze] [-ddg] [-flat] [-run] [-threads N] [-batch N] [-shards N] [-replicas N]
//	       [-reshard N] [-durability off|group|strict] [-stats] [-slowlog 5ms] file.mq
//
// With no flags the transformed program is printed (readable form, §V).
// With -run -batch N the transformed program's submissions are coalesced
// into batches of up to N requests (0 = batching off) and the batch
// statistics are reported. With -run -shards N each request is additionally
// routed across N partitions by its first argument (internal/shard's hash
// partitioner) and the per-shard request distribution is reported —
// results are unchanged, since the deterministic test service is a pure
// function of the request. With -replicas R each shard's reads additionally
// rotate round-robin over R read replicas (internal/replica's balancing
// policy) and the per-shard, per-replica distribution is reported. With
// -durability each modeled shard additionally runs a write-ahead log
// (internal/wal) in the given commit mode and every submission is logged and
// acknowledged per that mode; the per-shard record/fsync counts show how
// group commit amortizes durability exactly as batching amortizes round
// trips. With -reshard N the modeled cluster routes by a live hash-range
// ownership map (internal/shard's Ranges) instead of the static partitioner:
// the last shard starts rangeless, and after N routed requests the hottest
// shard's range is split onto it — a modeled copy window follows during
// which requests landing in the moving range are counted as double-writes,
// then routing flips to the new generation. The migration counters
// (generation, splits, ranges moved, rows copied, double-writes) appear in
// the unified -stats registry dump.
//
// With -stats the run's observability registry — request/queue/batch-wait
// span histograms, executor counters, and (with -durability) per-shard WAL
// state — is dumped to stderr in one unified report, replacing the ad-hoc
// per-shard record/fsync printout. With -slowlog every request slower than
// the threshold has its span tree rendered to stderr as it completes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/minilang"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/testsvc"
	"repro/internal/wal"
)

func main() {
	analyze := flag.Bool("analyze", false, "print the applicability analysis instead of code")
	ddg := flag.Bool("ddg", false, "print the DDG of each loop in Graphviz dot form")
	flat := flag.Bool("flat", false, "print guarded-statement form (skip the §V regrouping)")
	run := flag.Bool("run", false, "run original and transformed against a deterministic service and compare")
	threads := flag.Int("threads", 8, "worker threads for -run")
	batchSize := flag.Int("batch", 0, "coalesce submissions into batches of up to N requests for -run (0 = off)")
	shards := flag.Int("shards", 1, "partition -run requests across N shards by first argument (1 = off)")
	replicas := flag.Int("replicas", 1, "rotate each shard's -run reads over N read replicas (1 = off)")
	reshardAt := flag.Int64("reshard", 0, "with -run -shards N: route by a live hash-range map and split the hottest shard after this many routed requests (0 = off)")
	durability := flag.String("durability", "", "log each modeled shard's -run submissions through a WAL in this commit mode (off|group|strict; empty = no WAL)")
	stats := flag.Bool("stats", false, "after -run, dump the unified metrics registry (span histograms, executor counters, WAL state) to stderr")
	slowlog := flag.Duration("slowlog", 0, "render -run requests slower than this wall-clock threshold as span trees on stderr (0 = off)")
	doServe := flag.Bool("serve", false, "serve the simulated database over the wire protocol (internal/net) instead of transforming a program")
	addr := flag.String("addr", "127.0.0.1:7474", "-serve listen address")
	rows := flag.Int("rows", 10000, "-serve: rows preloaded into the `load` table")
	inflight := flag.Int("inflight", 64, "-serve: admission budget (max concurrently executing request units; 0 = unlimited)")
	scale := flag.Float64("scale", 0.02, "-serve: simulated-time scale factor for the backing server")
	flag.Parse()

	if *doServe {
		if err := serve(serveOptions{
			addr: *addr, rows: *rows, inflight: *inflight,
			replicas: *replicas, durability: *durability,
			scale: *scale, stats: *stats,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: asyncq [flags] file.mq")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	proc, err := minilang.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *ddg {
		printDDGs(proc)
		return
	}

	opts := core.Options{Readable: !*flat, SplitNested: true}
	trans, rep, err := core.Transform(proc, opts)
	if err != nil {
		fatal(err)
	}

	if *analyze {
		fmt.Printf("procedure %s: %d opportunity site(s), %d transformed\n",
			rep.Proc, rep.Opportunities(), rep.TransformedCount())
		for i, s := range rep.Sites {
			status := "transformed"
			if !s.Transformed() {
				status = "NOT transformed"
			}
			fmt.Printf("  site %d: %s — %s (queries: %d, converted: %d, reorder: %v, ruleB: %v)\n",
				i+1, s.Loop, status, s.Queries, s.Converted, s.UsedReorder, s.UsedFlatten)
			for _, r := range s.Reasons {
				fmt.Printf("    reason: %s\n", r)
			}
		}
		return
	}

	fmt.Print(ir.Print(trans))

	if *run {
		reg := ir.NewRegistry()
		in1 := interp.New(reg, testsvc.NewSync())
		args := defaultArgs(proc)
		r1, err := in1.Run(proc, args)
		if err != nil {
			fatal(fmt.Errorf("run original: %w", err))
		}
		// With -shards the deterministic backend is treated as N partitions:
		// every request is routed by its first argument through the shard
		// package's hash partitioner and counted, so the reported
		// distribution shows how the transformed program's submissions
		// would spread across a sharded cluster. With -replicas each
		// partition's reads additionally rotate round-robin across R read
		// replicas, modelling the replica group's balancing: a whole batch
		// (or rather, its per-shard sub-batch) rides to ONE replica, exactly
		// as internal/replica routes read batches.
		run := testsvc.Runner()
		runBatch := testsvc.BatchRunner()
		var perShard []int64
		var perReplica [][]int64
		var rr []atomic.Int64
		var mig *reshardModel
		if *reshardAt > 0 {
			if *shards < 2 {
				fatal(fmt.Errorf("-reshard requires -shards >= 2 (the last shard is the split target)"))
			}
			mig = newReshardModel(*shards, *reshardAt)
		}
		if *shards > 1 || *replicas > 1 {
			perShard = make([]int64, max(*shards, 1))
			if *replicas > 1 {
				perReplica = make([][]int64, len(perShard))
				for i := range perReplica {
					perReplica[i] = make([]int64, *replicas)
				}
				rr = make([]atomic.Int64, len(perShard))
			}
			shardOf := func(args []any) int {
				if len(args) > 0 {
					if mig != nil {
						return mig.route(args[0])
					}
					return shard.Partition(args[0], len(perShard))
				}
				return 0
			}
			// countReads books n reads on the next replica of shard s's
			// rotation: n == 1 for a single request, n == the sub-batch size
			// for a batch, which visits one replica per round trip.
			countReads := func(s, n int) {
				if perReplica != nil {
					r := int(rr[s].Add(1)-1) % *replicas
					atomic.AddInt64(&perReplica[s][r], int64(n))
				}
			}
			baseRun, baseBatch := run, runBatch
			run = func(req query.Request) query.Result {
				s := shardOf(req.Args)
				atomic.AddInt64(&perShard[s], 1)
				countReads(s, 1)
				return baseRun(req)
			}
			runBatch = func(req query.BatchRequest) query.BatchResult {
				subBatch := make(map[int]int, len(perShard))
				for _, args := range req.ArgSets {
					s := shardOf(args)
					atomic.AddInt64(&perShard[s], 1)
					subBatch[s]++
				}
				for s := 0; s < len(perShard); s++ {
					if n := subBatch[s]; n > 0 {
						countReads(s, n)
					}
				}
				return baseBatch(req)
			}
		}
		// With -durability every successful submission is appended to its
		// modeled shard's write-ahead log and acknowledged per the chosen
		// commit mode before the runner returns, so the reported fsync
		// counts show the group-commit amortization: a coalesced batch's
		// per-shard sub-batch becomes one append of many records, and
		// concurrent commits share fsyncs.
		var walLogs []*wal.Log
		if *durability != "" {
			mode, err := wal.ParseMode(*durability)
			if err != nil {
				fatal(err)
			}
			walLogs = make([]*wal.Log, max(*shards, 1))
			for i := range walLogs {
				walLogs[i] = wal.New(wal.Options{Mode: mode})
			}
			logOf := func(args []any) *wal.Log {
				if len(args) > 0 {
					if mig != nil {
						// Follow the live range map so a record lands on the
						// shard that owns its key at commit time.
						return walLogs[mig.owner(args[0])]
					}
					return walLogs[shard.Partition(args[0], len(walLogs))]
				}
				return walLogs[0]
			}
			baseRun, baseBatch := run, runBatch
			run = func(req query.Request) query.Result {
				res := baseRun(req)
				if res.Err == nil {
					l := logOf(req.Args)
					l.Commit(l.Append(req.Name, req.SQL, [][]any{req.Args}))
				}
				return res
			}
			runBatch = func(req query.BatchRequest) query.BatchResult {
				br := baseBatch(req)
				sub := make(map[*wal.Log][][]any, len(walLogs))
				for i, args := range req.ArgSets {
					if br.Errs == nil || br.Errs[i] == nil {
						l := logOf(args)
						sub[l] = append(sub[l], args)
					}
				}
				for l, sets := range sub {
					l.Commit(l.Append(req.Name, req.SQL, sets))
				}
				return br
			}
		}
		var svc *exec.Service
		if *batchSize > 1 {
			svc = batch.NewService(*threads, run, runBatch,
				batch.Options{MaxBatch: *batchSize})
		} else {
			svc = exec.NewService(*threads, run)
		}
		defer svc.Close()
		// -stats / -slowlog turn on the observability stack: one root span
		// per submission (the deterministic test runner needs no span
		// runners — queue wait and batch coalescing are still measured),
		// with WAL state and executor counters pulled into one registry.
		var obsReg *obs.Registry
		if *stats || *slowlog > 0 {
			obsReg = obs.NewRegistry()
			tr := obs.NewTracer(obsReg)
			if *slowlog > 0 {
				tr.SetSlowLog(*slowlog, os.Stderr)
			}
			svc.EnableTracing(tr)
			obsReg.RegisterSource("exec", func() map[string]float64 {
				submitted, completed := svc.Stats()
				batches, avg := svc.BatchStats()
				return map[string]float64{
					"submitted": float64(submitted),
					"completed": float64(completed),
					"batches":   float64(batches),
					"batch.avg": avg,
				}
			})
			for i, l := range walLogs {
				l := l
				l.SetMetrics(obsReg)
				obsReg.RegisterSource(fmt.Sprintf("shard%d.wal", i), func() map[string]float64 {
					return l.Stats().Metrics()
				})
			}
			if mig != nil {
				// Migration counters ride the unified dump like every other
				// subsystem, not a side-channel printout.
				obsReg.RegisterSource("shard.migrations", mig.metrics)
			}
		}
		in2 := interp.New(reg, svc)
		r2, err := in2.Run(trans, args)
		if err != nil {
			fatal(fmt.Errorf("run transformed: %w", err))
		}
		if mig != nil {
			// The request stream is over: a copy window still open completes
			// and flips now, so the reports see the final generation.
			mig.finish()
		}
		same := r1.Output == r2.Output && len(r1.Returned) == len(r2.Returned)
		for i := range r1.Returned {
			same = same && interp.Equal(r1.Returned[i], r2.Returned[i])
		}
		fmt.Fprintf(os.Stderr, "\n-- run: results identical: %v; returns: %v\n",
			same, formatVals(r1.Returned))
		if *batchSize > 1 {
			submitted, _ := svc.Stats()
			batches, avg := svc.BatchStats()
			fmt.Fprintf(os.Stderr, "-- batch: %d submissions coalesced into %d batches (avg size %.1f)\n",
				submitted, batches, avg)
		}
		if *shards > 1 {
			fmt.Fprintf(os.Stderr, "-- shards: requests per shard: %v\n", perShard)
		}
		if mig != nil && !*stats {
			// The unified -stats dump carries these counters when requested.
			fmt.Fprintf(os.Stderr, "-- reshard: %s\n", mig.report())
		}
		if perReplica != nil {
			fmt.Fprintf(os.Stderr, "-- replicas: reads per shard/replica: %v\n", perReplica)
		}
		// Drain the pool before reading final WAL/span state: every pending
		// handle completes (ending its request span) before the dump.
		svc.Close()
		if walLogs != nil {
			var recs, syncs int64
			perLog := make([]int64, len(walLogs))
			for i, l := range walLogs {
				l.SyncTo(l.LastLSN())
				st := l.Stats()
				perLog[i] = st.Appends
				recs += st.SyncedRecords
				syncs += st.Syncs
			}
			if !*stats {
				// The unified -stats dump below subsumes this ad-hoc report.
				avg := 0.0
				if syncs > 0 {
					avg = float64(recs) / float64(syncs)
				}
				fmt.Fprintf(os.Stderr, "-- durability %s: %d records durable in %d fsyncs (%.1f records/fsync); records per shard: %v\n",
					*durability, recs, syncs, avg, perLog)
			}
		}
		if *stats && obsReg != nil {
			fmt.Fprintln(os.Stderr, "\n-- stats:")
			if err := obsReg.Dump(os.Stderr); err != nil {
				fatal(err)
			}
		}
		for _, l := range walLogs {
			l.Close()
		}
	}
}

// defaultArgs supplies simple arguments so -run works on programs with
// integer or list parameters: integers get 20, lists get [1..12].
func defaultArgs(p *ir.Proc) []interp.Value {
	args := make([]interp.Value, len(p.Params))
	for i := range args {
		items := make([]interp.Value, 12)
		for j := range items {
			items[j] = int64(j + 1)
		}
		if i%2 == 0 {
			args[i] = int64(20)
		} else {
			args[i] = interp.NewList(items...)
		}
	}
	return args
}

func formatVals(vals []interp.Value) string {
	out := "["
	for i, v := range vals {
		if i > 0 {
			out += ", "
		}
		out += interp.Format(v)
	}
	return out + "]"
}

func printDDGs(proc *ir.Proc) {
	reg := ir.NewRegistry()
	n := 0
	ir.WalkStmts(proc.Body, func(s ir.Stmt) {
		switch s.(type) {
		case *ir.While, *ir.ForEach, *ir.Scan:
			n++
			g := dataflow.BuildLoop(s, reg)
			fmt.Print(g.Dot(fmt.Sprintf("%s_loop%d", proc.Name, n)))
		}
	})
	if n == 0 {
		fmt.Fprintln(os.Stderr, "asyncq: no loops found")
	}
}

// reshardModel routes -run requests by a live hash-range ownership map and
// walks one split through the migration protocol's phases in miniature:
// after `trigger` routed requests the hottest shard's widest range is
// halved onto the reserved last shard, a copy window of copyWindow further
// requests follows during which requests landing in the moving range still
// route to the old owner but are counted as double-writes, and then the
// routing flips to the new generation. "Rows copied" is the number of
// distinct keys seen so far that the flip hands to the new owner — the
// modeled population of the moved range.
type reshardModel struct {
	mu                                            sync.Mutex
	rg                                            *shard.Ranges
	pending                                       *shard.Ranges // built at trigger, installed at flip
	phase                                         int           // 0 before trigger, 1 copy window, 2 flipped
	trigger                                       int64
	flipAt                                        int64
	routed                                        int64
	hot                                           int
	newIdx                                        int
	counts                                        []int64
	seen                                          map[uint64]struct{}
	splits, rangesMoved, rowsCopied, doubleWrites int64
}

// copyWindow is the modeled length of the copy phase, in routed requests.
const copyWindow = 32

func newReshardModel(shards int, trigger int64) *reshardModel {
	// The last shard starts rangeless: it is the split's target, so the
	// per-shard accounting arrays sized for `shards` stay index-stable
	// across the migration.
	return &reshardModel{
		rg:      shard.NewRanges(shards - 1),
		trigger: trigger,
		newIdx:  shards - 1,
		counts:  make([]int64, shards),
		seen:    make(map[uint64]struct{}),
	}
}

// route returns the owner of arg under the live map, advancing the modeled
// migration as the request stream crosses its phase boundaries.
func (m *reshardModel) route(arg any) int {
	h := shard.Hash64(arg)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routed++
	switch m.phase {
	case 0:
		if m.routed >= m.trigger {
			m.begin()
		}
	case 1:
		if m.routed >= m.flipAt {
			m.flip()
		}
	}
	s := m.rg.Owner(h)
	m.counts[s]++
	m.seen[h] = struct{}{}
	if m.phase == 1 && m.pending.Owner(h) == m.newIdx {
		// In the copy window a request whose key is moving still executes
		// on the old owner and is mirrored to the new one.
		m.doubleWrites++
	}
	return s
}

// owner reports arg's owner under the live map without accounting it.
func (m *reshardModel) owner(arg any) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rg.Owner(shard.Hash64(arg))
}

// begin picks the hottest current owner and stages the split.
func (m *reshardModel) begin() {
	hot := 0
	for _, s := range m.rg.Owners() {
		if m.counts[s] > m.counts[hot] {
			hot = s
		}
	}
	next, _, err := m.rg.Split(hot, m.newIdx)
	if err != nil {
		m.phase = 2 // unsplittable (degenerate map): stay put
		return
	}
	m.hot, m.pending = hot, next
	m.flipAt = m.routed + copyWindow
	m.phase = 1
}

// flip installs the new generation and books the copy.
func (m *reshardModel) flip() {
	for h := range m.seen {
		if m.pending.Owner(h) == m.newIdx {
			m.rowsCopied++
		}
	}
	m.rg = m.pending
	m.pending = nil
	m.splits++
	m.rangesMoved++
	m.phase = 2
}

// finish completes a copy window left open when the request stream ended.
func (m *reshardModel) finish() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phase == 1 {
		m.flip()
	}
}

func (m *reshardModel) metrics() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]float64{
		"generation":    float64(m.rg.Generation()),
		"splits":        float64(m.splits),
		"ranges.moved":  float64(m.rangesMoved),
		"rows.copied":   float64(m.rowsCopied),
		"double.writes": float64(m.doubleWrites),
	}
}

func (m *reshardModel) report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.splits == 0 {
		return fmt.Sprintf("no split: %d requests routed, trigger %d", m.routed, m.trigger)
	}
	return fmt.Sprintf("split shard %d onto %d (generation %d): %d ranges moved, %d rows copied, %d double-writes",
		m.hot, m.newIdx, m.rg.Generation(), m.rangesMoved, m.rowsCopied, m.doubleWrites)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "asyncq:", err)
	os.Exit(1)
}
