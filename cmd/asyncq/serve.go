package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// serveOptions are the -serve flags (see main).
type serveOptions struct {
	addr       string
	rows       int
	inflight   int
	replicas   int
	durability string
	scale      float64
	stats      bool
}

// serve runs the network front door: a replica group over the simulated
// server (the full submission stack's backend), preloaded with the `load`
// table cmd/loadgen drives, fronted by the wire protocol with a bounded
// admission budget. Blocks until SIGINT/SIGTERM.
func serve(o serveOptions) error {
	mode := wal.Group
	if o.durability != "" {
		var err error
		if mode, err = wal.ParseMode(o.durability); err != nil {
			return err
		}
	}
	if o.replicas < 1 {
		o.replicas = 1
	}
	g := replica.NewGroup(server.SYS1(), o.scale, replica.Options{
		Replicas:   o.replicas,
		Durability: mode,
	})
	defer g.Close()
	schema := storage.NewSchema(
		storage.Column{Name: "id", Type: storage.TInt},
		storage.Column{Name: "val", Type: storage.TString},
	)
	if err := g.CreateTable("load", schema, 0); err != nil {
		return err
	}
	for i := 1; i <= o.rows; i++ {
		if err := g.InsertRow("load", []any{int64(i), fmt.Sprintf("v%d", i)}); err != nil {
			return err
		}
	}
	g.FinishLoad()
	if err := g.AddIndex("load", "id", true); err != nil {
		return err
	}
	g.Warm()

	reg := obs.NewRegistry()
	g.SetMetrics(reg)
	fd := net.NewServer(g, net.ServerOptions{
		MaxInflight: o.inflight,
		Metrics:     reg,
	})
	if err := fd.Listen(o.addr); err != nil {
		return err
	}
	defer fd.Close()
	fmt.Printf("asyncq: serving %d-row load table on %s (replicas=%d durability=%s inflight=%d)\n",
		o.rows, fd.Addr(), o.replicas, mode, o.inflight)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "asyncq: shutting down")
	if o.stats {
		fmt.Fprintln(os.Stderr, "-- stats:")
		if err := reg.Dump(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
